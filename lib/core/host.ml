(* The CKI host-kernel side: hPA segment delegation, vCPU scheduling,
   VirtIO backends, hardware-interrupt handling and virtual-interrupt
   injection (Sections 3.3 and 4.2, "slow paths").

   In a nested cloud the host kernel *is* the L1 kernel; the crucial
   property is that a CKI exit never involves the L0 hypervisor, so the
   costs here are environment-independent. *)

type delegated = { base : Hw.Addr.pfn; frames : int; container : int }

(* How segments are delegated.  [First_fit] is the paper's inherited
   limitation: the whole request must be one contiguous run, so churn
   plus interleaved host allocations eventually leaves no run long
   enough even when plenty of total memory is free.  [Scatter] tries
   contiguous first and, when no run fits, adaptively splits the
   request into smaller chunks (halving down to [scatter_min_chunk]),
   so delegation succeeds whenever enough memory exists in runs of at
   least the minimum chunk — the property the fleet's create/destroy
   churn depends on. *)
type policy = First_fit | Scatter

let scatter_min_chunk = 64 (* 256 KiB: bounds the zone count per container *)

type t = {
  machine : Hw.Machine.t;
  clock : Hw.Clock.t;
  host_root : Hw.Addr.pfn;  (** host kernel page-table root *)
  host_pcid : int;
  mutable policy : policy;
  mutable delegations : delegated list;
  mutable next_container : int;
  mutable hypercalls : int;
  mutable injected_virqs : int;
  mutable hw_interrupts : int;
  mutable doorbells : int;  (** device-doorbell hypercalls (Net/Blk) *)
}

(* [first_container] separates container-id spaces when several host
   instances share one machine (fleet host slices): delegations and
   frame owners are tagged by container id, so ids must stay unique
   machine-wide. *)
let create ?(policy = Scatter) ?(first_container = 1) (machine : Hw.Machine.t) =
  let mem = Hw.Machine.mem machine in
  let host_root = Hw.Phys_mem.alloc mem ~owner:Hw.Phys_mem.Host ~kind:(Hw.Phys_mem.Page_table 4) in
  {
    machine;
    clock = Hw.Machine.clock machine;
    host_root;
    host_pcid = 0;
    policy;
    delegations = [];
    next_container = first_container;
    hypercalls = 0;
    injected_virqs = 0;
    hw_interrupts = 0;
    doorbells = 0;
  }

let machine t = t.machine
let host_root t = t.host_root
let host_pcid t = t.host_pcid
let policy t = t.policy
let set_policy t p = t.policy <- p

let fresh_container_id t =
  let id = t.next_container in
  t.next_container <- id + 1;
  id

(* Delegate a contiguous hPA segment to [container].  First-fit over
   physical memory — the fragmentation-prone allocation the paper
   acknowledges as CKI's limitation. *)
let delegate_segment t ~container ~frames =
  let mem = Hw.Machine.mem t.machine in
  let base =
    Hw.Phys_mem.alloc_contiguous mem ~owner:(Hw.Phys_mem.Container container)
      ~kind:Hw.Phys_mem.Data ~count:frames
  in
  t.delegations <- { base; frames; container } :: t.delegations;
  (base, frames)

(* Scatter delegation: contiguous when a run exists (so the layout is
   identical to first-fit on an unfragmented host), otherwise split the
   request adaptively — halve the attempted chunk on every contiguous
   failure, down to [scatter_min_chunk].  Chunks are recorded as
   independent delegations, so [reclaim_segment] and the analysis
   scanner need no special casing.  On failure every chunk already
   taken is rolled back before Out_of_memory propagates. *)
let delegate_scatter t ~container ~frames =
  let mem = Hw.Machine.mem t.machine in
  let chunks = ref [] in
  let rollback () =
    List.iter
      (fun (base, n) ->
        for pfn = base to base + n - 1 do
          Hw.Phys_mem.free mem pfn
        done)
      !chunks
  in
  let rec fill remaining attempt =
    if remaining > 0 then
      let attempt = min attempt remaining in
      match
        Hw.Phys_mem.alloc_contiguous mem ~owner:(Hw.Phys_mem.Container container)
          ~kind:Hw.Phys_mem.Data ~count:attempt
      with
      | base ->
          chunks := (base, attempt) :: !chunks;
          fill (remaining - attempt) attempt
      | exception Hw.Phys_mem.Out_of_memory ->
          if attempt <= scatter_min_chunk then begin
            rollback ();
            raise Hw.Phys_mem.Out_of_memory
          end
          else fill remaining (max scatter_min_chunk (attempt / 2))
  in
  fill frames frames;
  let segs = List.rev !chunks in
  List.iter (fun (base, n) -> t.delegations <- { base; frames = n; container } :: t.delegations) segs;
  segs

let delegate t ~container ~frames =
  match t.policy with
  | First_fit -> [ delegate_segment t ~container ~frames ]
  | Scatter -> delegate_scatter t ~container ~frames

let reclaim_segment t ~container =
  let mem = Hw.Machine.mem t.machine in
  let mine, rest = List.partition (fun d -> d.container = container) t.delegations in
  List.iter
    (fun d ->
      for pfn = d.base to d.base + d.frames - 1 do
        if not (Hw.Phys_mem.is_free mem pfn) then Hw.Phys_mem.free mem pfn
      done)
    mine;
  t.delegations <- rest

let delegations_of t ~container = List.filter (fun d -> d.container = container) t.delegations

(* Host-side handler for hypercall requests (the global-data privileged
   operations of Section 3.3: VirtIO, timers, vCPU pause, IPIs). *)
let handle_hypercall t (kind : Kernel_model.Platform.io_kind) =
  t.hypercalls <- t.hypercalls + 1;
  match kind with
  | Kernel_model.Platform.Net_tx | Kernel_model.Platform.Net_rx_ack
  | Kernel_model.Platform.Blk_read | Kernel_model.Platform.Blk_write ->
      (* A device doorbell: the MMIO write lands in the host backend.
         The VirtIO service cost is charged by the queue owner
         (Kernel_model.Virtio.service); here only the write itself. *)
      t.doorbells <- t.doorbells + 1;
      Hw.Clock.charge t.clock "doorbell_write" Hw.Cost.doorbell_write
  | Kernel_model.Platform.Timer -> Hw.Clock.charge t.clock "host_timer_setup" 120.0
  | Kernel_model.Platform.Ipi -> Hw.Clock.charge t.clock "host_ipi" 200.0
  | Kernel_model.Platform.Console -> ()

(* A hardware interrupt arrived while a container vCPU was running: the
   interrupt gate redirected it here; handle and inject a virtual
   interrupt on resume. *)
let handle_hw_interrupt t ~vector =
  ignore vector;
  t.hw_interrupts <- t.hw_interrupts + 1;
  Hw.Clock.charge t.clock "host_irq_handler" Hw.Cost.irq_delivery

let inject_virq t =
  t.injected_virqs <- t.injected_virqs + 1;
  Hw.Clock.charge t.clock "virq_inject" Hw.Cost.virq_inject

let hypercall_count t = t.hypercalls
let injected_virqs t = t.injected_virqs
let hw_interrupt_count t = t.hw_interrupts
let doorbell_count t = t.doorbells

(* ------------------------------------------------------------------ *)
(* Warm pool: pre-booted clone templates for instant scale-out         *)
(* ------------------------------------------------------------------ *)

(* Polymorphic so lib/core need not depend on lib/snapshot: the host
   manages the pool discipline (pre-boot N, rotate, refill on miss);
   the snapshot layer supplies the template type and the clone step. *)
module Warm_pool = struct
  type 'a t = {
    make : unit -> 'a;
    target : int;
    low_water : int;
    ready : 'a Queue.t;
    mutable prebooted : int;  (** templates ever built (pre-boot + misses + refills) *)
    mutable served : int;  (** take requests served *)
    mutable hits : int;  (** takes served from a ready template *)
    mutable misses : int;  (** takes that had to build inline (cold path) *)
    mutable refills : int;  (** templates built by refill_low_water *)
  }

  let refill_to p n =
    let built = ref 0 in
    while Queue.length p.ready < n do
      Queue.add (p.make ()) p.ready;
      p.prebooted <- p.prebooted + 1;
      incr built
    done;
    !built

  let create ?(low_water = 0) ~target ~make () =
    if target < 0 || low_water < 0 || low_water > target then invalid_arg "Warm_pool.create";
    let p =
      {
        make;
        target;
        low_water;
        ready = Queue.create ();
        prebooted = 0;
        served = 0;
        hits = 0;
        misses = 0;
        refills = 0;
      }
    in
    ignore (refill_to p target);
    p

  (* Templates are immutable once frozen, so a take rotates rather than
     consumes: the same template serves an unbounded number of clones.
     An empty pool is a miss — the cold build happens inline, which is
     exactly what [refill_low_water] exists to get ahead of. *)
  let take p =
    p.served <- p.served + 1;
    match Queue.take_opt p.ready with
    | Some x ->
        p.hits <- p.hits + 1;
        Queue.add x p.ready;
        x
    | None ->
        let x = p.make () in
        p.prebooted <- p.prebooted + 1;
        p.misses <- p.misses + 1;
        Queue.add x p.ready;
        x

  (* The background-refill hook: called from the host's idle path (the
     fleet controller runs it between event-loop rounds), it tops the
     pool back to target once the ready count dips below the low-water
     mark, so a scale-out burst keeps hitting warm templates instead of
     collapsing to the cold build silently. *)
  let refill_low_water p =
    if Queue.length p.ready < p.low_water then begin
      let built = refill_to p p.target in
      p.refills <- p.refills + built;
      built
    end
    else 0

  (* Hand the drained templates back to the caller: only the snapshot
     layer knows whether a template still backs live CoW clones and may
     be destroyed or must be retired until its refcounts drop. *)
  let drain p =
    let items = List.of_seq (Queue.to_seq p.ready) in
    Queue.clear p.ready;
    items

  let size p = Queue.length p.ready
  let prebooted p = p.prebooted
  let served p = p.served
  let hits p = p.hits
  let misses p = p.misses
  let refills p = p.refills
end
