(** A CKI secure container: guest kernel + KSM + gates on a delegated
    hPA segment, exposed through the common {!Virt.Backend.t}.

    The platform wiring carries the paper's performance structure:
    native syscalls (OPT1/2/3), page faults handled by the guest kernel
    plus exactly two KSM calls (PTE update + iret = 77 ns), validated
    CR3 loads on process switches, 390 ns hypercalls with no L0
    involvement, and single-stage translation (the guest buddy
    allocator hands out host-physical frames directly). *)

type t = {
  backend : Virt.Backend.t;
  host : Host.t;
  ksm : Ksm.t;
  gates : Gates.t;
  cpus : Hw.Cpu.t array;
  buddy : Kernel_model.Buddy.t;
  cfg : Config.t;
  container_id : int;
  pcid : int;
  mutable current_vcpu : int;
  aspaces : (int, Hw.Addr.pfn) Hashtbl.t;
  next_as : int ref;
}

val backend : t -> Virt.Backend.t
val ksm : t -> Ksm.t
val gates : t -> Gates.t
val cpu : t -> int -> Hw.Cpu.t
val buddy : t -> Kernel_model.Buddy.t
val container_id : t -> int
val pcid : t -> int

val enter_guest_kernel : Hw.Cpu.t -> unit
(** Put a vCPU into the guest-kernel state: kernel mode with
    PKRS = PKRS_GUEST. *)

val create : ?env:Virt.Env.t -> ?cfg:Config.t -> Host.t -> t
(** Boot a container on [Host.t]: delegates hPA segments under the
    host's delegation policy (one contiguous run under [First_fit],
    possibly several chunks under [Scatter]), constructs the KSM
    (trusted boot), allocates a PCID and vCPUs, and wires the guest
    kernel's platform.  Charges the full guest-kernel boot cost
    ({!Hw.Cost.guest_kernel_boot}) — the cost that snapshot restore and
    warm clones amortize away. *)

val destroy : t -> unit
(** Tear the container down completely: drop the CoW references it
    holds on other containers' frozen template frames (found by walking
    its live page tables), reclaim its delegated segments, and free
    every frame it or its KSM owns.  The operation behind fleet
    scale-in and create/destroy churn.
    @raise Invalid_argument on a frozen template whose frames clones
    still reference. *)

val assemble :
  ?env:Virt.Env.t ->
  cfg:Config.t ->
  Host.t ->
  container_id:int ->
  pcid:int ->
  ksm:Ksm.t ->
  buddy:Kernel_model.Buddy.t ->
  aspaces:(int, Hw.Addr.pfn) Hashtbl.t ->
  next_as:int ref ->
  unit ->
  t
(** Wire a container from already-constructed parts: gates, vCPUs, the
    guest kernel's platform closures and the backend record.  [create]
    uses it after trusted KSM boot; the snapshot layer uses it with a
    KSM, buddy and address-space table rebuilt from an image, so
    restored and cloned containers get platform wiring identical to a
    cold boot.  Does not charge boot cost and does not allocate — the
    caller owns the segment, ids and PCID. *)

val create_standalone : ?env:Virt.Env.t -> ?cfg:Config.t -> ?mem_mib:int -> unit -> t
(** Convenience: fresh machine + host + one container. *)
