(* Host-side vCPU scheduling with timer preemption.

   The host kernel schedules container vCPUs like ordinary threads
   (Section 3.3: "The host kernel schedules the vCPUs of the guests").
   Preemption relies on the interrupt-abuse defences of Section 4.4:
   the timer interrupt always reaches the host through the container's
   interrupt gate — the guest cannot disable interrupts (cli blocked,
   sysret pins IF), cannot re-point the IDT, and cannot forge or
   monopolize vectors — so even a deadlooping guest kernel is preempted
   on schedule and DoS is contained to the guest's own timeslice.

   Quotas are cgroup cpu.max semantics: a vCPU with [quota = (period,
   budget)] may consume at most [budget] ns of guest runtime per
   [period] ns window; once the budget is spent the scheduler skips it
   (a throttle event) until the window rolls over.  When every runnable
   vCPU is throttled the host idles the CPU forward to the earliest
   refill instead of busy-waiting. *)

type vcpu_entry = {
  container : Container.t;
  vcpu : int;
  mutable work : (unit -> unit) Queue.t;  (** pending guest work items *)
  mutable executed : int;  (** work items completed *)
  mutable slices : int;  (** timeslices received *)
  mutable spinning : bool;  (** models a compromised deadlooping guest *)
  quota : (float * float) option;  (** (period_ns, budget_ns) runtime cap *)
  mutable q_used : float;  (** runtime consumed in the current period *)
  mutable q_period_start : float;
  mutable throttles : int;  (** times skipped with an exhausted budget *)
}

type t = {
  host : Host.t;
  clock : Hw.Clock.t;
  slice_ns : float;
  mutable entries : vcpu_entry list;  (** round-robin order *)
  mutable preemptions : int;
  mutable throttle_events : int;
}

let create ?(slice_ns = 1_000_000.0) host =
  {
    host;
    clock = Hw.Machine.clock (Host.machine host);
    slice_ns;
    entries = [];
    preemptions = 0;
    throttle_events = 0;
  }

let add_vcpu ?quota t container ~vcpu =
  (match quota with
  | Some (period, budget) when period <= 0.0 || budget <= 0.0 ->
      invalid_arg "Vcpu_sched.add_vcpu: quota period and budget must be positive"
  | _ -> ());
  let e =
    {
      container;
      vcpu;
      work = Queue.create ();
      executed = 0;
      slices = 0;
      spinning = false;
      quota;
      q_used = 0.0;
      q_period_start = Hw.Clock.now t.clock;
      throttles = 0;
    }
  in
  t.entries <- t.entries @ [ e ];
  e

let remove_vcpu t e = t.entries <- List.filter (fun e' -> e' != e) t.entries
let submit_work e f = Queue.add f e.work
let mark_spinning e = e.spinning <- true

(* Roll the entry's quota window forward to the one containing now. *)
let refresh_quota t e =
  match e.quota with
  | None -> ()
  | Some (period, _) ->
      let now = Hw.Clock.now t.clock in
      if now >= e.q_period_start +. period then begin
        let periods = floor ((now -. e.q_period_start) /. period) in
        e.q_period_start <- e.q_period_start +. (periods *. period);
        e.q_used <- 0.0
      end

let throttled t e =
  refresh_quota t e;
  match e.quota with None -> false | Some (_, budget) -> e.q_used >= budget

(* Run one timeslice on [e]: resume the guest (virtual-interrupt
   injection), execute work until the slice expires (or spin), then the
   host timer fires and preempts through the interrupt gate.  The
   runtime actually consumed is charged against the entry's quota. *)
let run_slice t e =
  e.slices <- e.slices + 1;
  let cpu = Container.cpu e.container e.vcpu in
  Container.enter_guest_kernel cpu;
  Host.inject_virq t.host;
  let t0 = Hw.Clock.now t.clock in
  let slice_end = t0 +. t.slice_ns in
  if e.spinning then
    (* a compromised guest burns its whole slice *)
    Hw.Clock.advance t.clock t.slice_ns
  else begin
    let rec drain () =
      if Hw.Clock.now t.clock < slice_end then
        match Queue.take_opt e.work with
        | Some f ->
            f ();
            e.executed <- e.executed + 1;
            drain ()
        | None -> ()
    in
    drain ()
  end;
  e.q_used <- e.q_used +. (Hw.Clock.now t.clock -. t0);
  (* Timer preemption: hardware interrupt -> interrupt gate -> host.
     The PKS-switch extension fires regardless of guest state. *)
  match
    Gates.interrupt (Container.gates e.container) cpu ~vcpu:e.vcpu ~vector:Hw.Idt.vec_timer
      ~kind:Hw.Idt.Hardware
      (fun v -> Host.handle_hw_interrupt t.host ~vector:v)
  with
  | Ok () -> t.preemptions <- t.preemptions + 1
  | Error e -> failwith ("Vcpu_sched: timer gate failed: " ^ Gates.show_error e)

(* Earliest quota refill among the entries; infinity when none. *)
let next_refill t =
  List.fold_left
    (fun acc e ->
      match e.quota with Some (period, _) -> Float.min acc (e.q_period_start +. period) | None -> acc)
    infinity t.entries

(* Round-robin for [slices] total timeslices.  [after_slice] runs in
   host context between slices — the I/O plane's device-service window
   (flush coalesced queues, pump the switch) multiplexed with guest
   execution.  Throttled vCPUs are skipped without consuming a slice;
   if every vCPU is throttled the clock idles forward to the earliest
   refill, so the budget cap costs wall-clock latency, not livelock. *)
let run ?(after_slice = fun () -> ()) t ~slices =
  let remaining = ref slices in
  let rec go entries =
    if !remaining > 0 then
      match entries with
      | [] -> go t.entries
      | e :: rest ->
          if throttled t e then begin
            e.throttles <- e.throttles + 1;
            t.throttle_events <- t.throttle_events + 1;
            if List.for_all (fun e' -> throttled t e') t.entries then begin
              let refill = next_refill t in
              let now = Hw.Clock.now t.clock in
              if refill > now && refill < infinity then Hw.Clock.advance t.clock (refill -. now)
            end;
            go rest
          end
          else begin
            run_slice t e;
            after_slice ();
            decr remaining;
            go rest
          end
  in
  if t.entries <> [] then go t.entries

let preemptions t = t.preemptions
let throttle_events t = t.throttle_events
let entries t = t.entries
