(* Host-side vCPU scheduling with timer preemption.

   The host kernel schedules container vCPUs like ordinary threads
   (Section 3.3: "The host kernel schedules the vCPUs of the guests").
   Preemption relies on the interrupt-abuse defences of Section 4.4:
   the timer interrupt always reaches the host through the container's
   interrupt gate — the guest cannot disable interrupts (cli blocked,
   sysret pins IF), cannot re-point the IDT, and cannot forge or
   monopolize vectors — so even a deadlooping guest kernel is preempted
   on schedule and DoS is contained to the guest's own timeslice. *)

type vcpu_entry = {
  container : Container.t;
  vcpu : int;
  mutable work : (unit -> unit) Queue.t;  (** pending guest work items *)
  mutable executed : int;  (** work items completed *)
  mutable slices : int;  (** timeslices received *)
  mutable spinning : bool;  (** models a compromised deadlooping guest *)
}

type t = {
  host : Host.t;
  clock : Hw.Clock.t;
  slice_ns : float;
  mutable entries : vcpu_entry list;  (** round-robin order *)
  mutable preemptions : int;
}

let create ?(slice_ns = 1_000_000.0) host =
  { host; clock = Hw.Machine.clock (Host.machine host); slice_ns; entries = []; preemptions = 0 }

let add_vcpu t container ~vcpu =
  let e =
    { container; vcpu; work = Queue.create (); executed = 0; slices = 0; spinning = false }
  in
  t.entries <- t.entries @ [ e ];
  e

let submit_work e f = Queue.add f e.work
let mark_spinning e = e.spinning <- true

(* Run one timeslice on [e]: resume the guest (virtual-interrupt
   injection), execute work until the slice expires (or spin), then the
   host timer fires and preempts through the interrupt gate. *)
let run_slice t e =
  e.slices <- e.slices + 1;
  let cpu = Container.cpu e.container e.vcpu in
  Container.enter_guest_kernel cpu;
  Host.inject_virq t.host;
  let slice_end = Hw.Clock.now t.clock +. t.slice_ns in
  if e.spinning then
    (* a compromised guest burns its whole slice *)
    Hw.Clock.advance t.clock t.slice_ns
  else begin
    let rec drain () =
      if Hw.Clock.now t.clock < slice_end then
        match Queue.take_opt e.work with
        | Some f ->
            f ();
            e.executed <- e.executed + 1;
            drain ()
        | None -> ()
    in
    drain ()
  end;
  (* Timer preemption: hardware interrupt -> interrupt gate -> host.
     The PKS-switch extension fires regardless of guest state. *)
  match
    Gates.interrupt (Container.gates e.container) cpu ~vcpu:e.vcpu ~vector:Hw.Idt.vec_timer
      ~kind:Hw.Idt.Hardware
      (fun v -> Host.handle_hw_interrupt t.host ~vector:v)
  with
  | Ok () -> t.preemptions <- t.preemptions + 1
  | Error e -> failwith ("Vcpu_sched: timer gate failed: " ^ Gates.show_error e)

(* Round-robin for [slices] total timeslices.  [after_slice] runs in
   host context between slices — the I/O plane's device-service window
   (flush coalesced queues, pump the switch) multiplexed with guest
   execution. *)
let run ?(after_slice = fun () -> ()) t ~slices =
  let rec go remaining entries =
    if remaining > 0 then
      match entries with
      | [] -> go remaining t.entries
      | e :: rest ->
          run_slice t e;
          after_slice ();
          go (remaining - 1) rest
  in
  if t.entries <> [] then go slices t.entries

let preemptions t = t.preemptions
let entries t = t.entries
