(* Per-vCPU areas and their page-table subtrees.

   Each vCPU owns a small KSM-private area (secure stack + saved vCPU
   context + exit-reason mailbox).  Every per-vCPU page-table copy maps
   *its* vCPU's area at the constant virtual address
   [Layout.pervcpu_base], so gate code locates it without trusting the
   guest-controlled kernel_gs register (Figure 8c). *)

type area = {
  vcpu : int;
  frames : Hw.Addr.pfn array;  (** physical frames of this vCPU's area *)
  l3_root : Hw.Addr.pfn;  (** subtree to splice into L4 copies *)
  mutable saved_guest_context : int;  (** opaque register-file stamp *)
  mutable saved_host_context : int;
  mutable exit_reason : exit_reason option;
  mutable stack_depth : int;  (** secure-stack usage, for overflow checks *)
}

and exit_reason =
  | Exit_hypercall of Kernel_model.Platform.io_kind
  | Exit_interrupt of int
  | Exit_fault of string
[@@deriving show { with_path = false }]

type t = { areas : area array }

(* Build per-vCPU subtrees.  Frames come from KSM-owned memory; the
   subtree maps the area at [Layout.pervcpu_base] with pkey_ksm, so a
   guest kernel (PKRS = pkrs_guest) can never read or write it. *)
let create mem ~container_id ~vcpus =
  let alloc_ksm kind = Hw.Phys_mem.alloc mem ~owner:(Hw.Phys_mem.Ksm container_id) ~kind in
  let make_area vcpu =
    let frames =
      Array.init Layout.pervcpu_pages (fun _ -> alloc_ksm Hw.Phys_mem.Ksm_data)
    in
    (* Build l3 -> l2 -> l1 chain covering the area. *)
    let l3 = alloc_ksm (Hw.Phys_mem.Page_table 3) in
    let l2 = alloc_ksm (Hw.Phys_mem.Page_table 2) in
    let l1 = alloc_ksm (Hw.Phys_mem.Page_table 1) in
    let link ~pfn ~index ~target =
      Hw.Phys_mem.write_entry mem ~pfn ~index
        (Hw.Pte.make ~pfn:target ~flags:{ Hw.Pte.default_flags with writable = true })
    in
    let base = Layout.pervcpu_base in
    link ~pfn:l3 ~index:(Hw.Addr.index_at_level ~lvl:3 base) ~target:l2;
    link ~pfn:l2 ~index:(Hw.Addr.index_at_level ~lvl:2 base) ~target:l1;
    Array.iteri
      (fun i frame ->
        let va = base + (i * Hw.Addr.page_size) in
        Hw.Phys_mem.write_entry mem ~pfn:l1 ~index:(Hw.Addr.index_at_level ~lvl:1 va)
          (Hw.Pte.make ~pfn:frame
             ~flags:{ Hw.Pte.default_flags with writable = true; pkey = Hw.Pks.pkey_ksm }))
      frames;
    {
      vcpu;
      frames;
      l3_root = l3;
      saved_guest_context = 0;
      saved_host_context = 0;
      exit_reason = None;
      stack_depth = 0;
    }
  in
  { areas = Array.init vcpus make_area }

(* Snapshot support: the physical layout of each area (frames + l3
   subtree root), in vCPU order.  Transient gate state (saved contexts,
   exit reason, stack depth) is deliberately excluded — a captured
   container is quiesced, so restore re-zeroes it. *)
let export t = Array.map (fun a -> (Array.copy a.frames, a.l3_root)) t.areas

(* Rebuild a [t] from already-allocated frames.  The l3/l2/l1 table
   *contents* are restored separately by the snapshot's generic table
   import; this only reconstructs the descriptor records. *)
let import specs =
  {
    areas =
      Array.mapi
        (fun vcpu (frames, l3_root) ->
          {
            vcpu;
            frames = Array.copy frames;
            l3_root;
            saved_guest_context = 0;
            saved_host_context = 0;
            exit_reason = None;
            stack_depth = 0;
          })
        specs;
  }

let vcpus t = Array.length t.areas

let area t vcpu =
  if vcpu < 0 || vcpu >= Array.length t.areas then invalid_arg "Pervcpu.area";
  t.areas.(vcpu)

(* The L4 entry value splicing [vcpu]'s subtree into a top-level copy. *)
let l4_entry t vcpu =
  Hw.Pte.make ~pfn:(area t vcpu).l3_root ~flags:{ Hw.Pte.default_flags with writable = true }

(* Gate-side access check: touching the area at the constant VA must be
   performed with PKRS = 0.  Returns false (forgery detected / fault)
   when the executing context still holds guest rights — this is what
   defeats a guest jumping into the middle of an interrupt gate. *)
let accessible_with ~pkrs = Hw.Pks.allows pkrs ~key:Hw.Pks.pkey_ksm Hw.Pks.Write

let push_stack a =
  a.stack_depth <- a.stack_depth + 1;
  if a.stack_depth > 64 then failwith "Pervcpu: secure stack overflow"

let pop_stack a =
  if a.stack_depth <= 0 then failwith "Pervcpu: secure stack underflow";
  a.stack_depth <- a.stack_depth - 1
