(** Trace lint engine.

    Temporal rules over a recorded {!Hw.Probe} event stream — the
    properties that are not visible in a state snapshot because they
    concern orderings: PKRS discipline across gate entry/exit, the
    extensions E2/E3/E4 actually firing, and TLB shootdowns following
    every PTE permission downgrade on every vCPU that had the mapping
    cached. *)

type finding =
  | Destructive_exec of { cpu : int; mnemonic : string; pkrs : int }
      (** Table 3 / E2: a destructive privileged instruction executed
          (not blocked) while PKRS was non-zero *)
  | Gate_pkrs_leak of { cpu : int; gate : string; entry_pkrs : int; exit_pkrs : int }
      (** a switch gate exited with PKRS different from entry rights *)
  | Sysret_if_down of { cpu : int; pkrs : int }
      (** E3: sysret left IF clear while PKRS was non-zero *)
  | Missing_shootdown of { container : int; cpu : int; pcid : int; vpn : int }
      (** a PTE permission downgrade was not followed by a TLB
          invalidation on a vCPU holding the cached translation *)
  | Forged_pks_switch of { cpu : int; vector : int; pkrs_before : int; pkrs_after : int }
      (** E4 anomaly: PKRS changed across a software vectoring, or a
          hardware PKS-switch delivery failed to zero it *)
  | Wrpkrs_outside_gate of { cpu : int; value : int }
      (** a PKRS write executed outside any switch gate — only gate
          text may contain wrpkrs (no-new-kernel-exec invariant) *)
  | Forged_completion of { queue : string; used_idx : int }
      (** a VirtIO completion interrupt was injected with no freshly
          published used-ring entries behind it — interrupt forgery
          through the I/O plane *)
  | Empty_doorbell of { queue : string; avail_idx : int }
      (** a doorbell rang with no new avail-ring entries posted — a
          phantom kick (wasted exit, or probing the host service
          path) *)
  | Trace_truncated of { dropped : int; withdrawn : int }
      (** the recorder's ring buffer overflowed: [dropped] events were
          lost, and [withdrawn] wrpkrs-outside-gate candidates were
          suppressed because the truncation made their gate context
          unknowable — informational, not a violation *)

val pp_finding : Format.formatter -> finding -> unit
val show_finding : finding -> string
val equal_finding : finding -> finding -> bool

val rule_name : finding -> string
val subject : finding -> string

val run : ?dropped:int -> Hw.Probe.event list -> finding list
(** Single pass over the events (oldest first). Tolerates truncated
    traces: rules that need a matching earlier event suppress rather
    than guess when the prefix may have been dropped. Pass
    [~dropped] (the recorder's {!Trace.dropped} count, default 0) to
    surface truncation itself: when positive, a [Trace_truncated]
    finding reports the drop count and how many rule candidates the
    suppression logic withdrew because of it. *)
