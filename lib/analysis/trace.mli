(** Ring-buffer recorder for {!Hw.Probe} events.

    Attach a recorder around a scenario, run it, detach, then hand the
    captured event stream to {!Lint.run}. Events are recorded into a
    flat int-encoded {!Hw.Probe.ring} (a few array stores per event, no
    allocation) and decoded back into {!Hw.Probe.event} values lazily
    when {!events} is called at lint time. The buffer is bounded:
    when full, the oldest events are dropped (and counted), so long
    scenarios degrade gracefully instead of growing without bound — the
    lint rules tolerate a truncated prefix. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 events. *)

val attach : t -> unit
(** Install this recorder as the {!Hw.Probe} sink (replaces any
    previous sink). *)

val detach : unit -> unit
(** Remove the probe sink (whichever recorder holds it). *)

val record : t -> Hw.Probe.event -> unit
(** Append one event directly. This is also the injection point for
    fault-injection tests, which synthesize event sequences that the
    simulator's enforcement would normally prevent. *)

val events : t -> Hw.Probe.event list
(** Captured events, oldest first. *)

val tagged_events : t -> (int * Hw.Probe.event) list
(** Captured events, oldest first, each paired with the id of the
    domain that emitted it — the input {!Racecheck.check} consumes. *)

val length : t -> int

val dropped : t -> int
(** Events lost to ring-buffer overflow. *)

val clear : t -> unit

val with_recorder : ?capacity:int -> (unit -> 'a) -> 'a * t
(** [with_recorder f] runs [f] with a fresh recorder attached, then
    detaches it (also on exceptions) and returns [f]'s result with the
    recorder. *)
