(* Trace lint engine: temporal rules over the probe event stream. *)

type finding =
  | Destructive_exec of { cpu : int; mnemonic : string; pkrs : int }
  | Gate_pkrs_leak of { cpu : int; gate : string; entry_pkrs : int; exit_pkrs : int }
  | Sysret_if_down of { cpu : int; pkrs : int }
  | Missing_shootdown of { container : int; cpu : int; pcid : int; vpn : int }
  | Forged_pks_switch of { cpu : int; vector : int; pkrs_before : int; pkrs_after : int }
  | Wrpkrs_outside_gate of { cpu : int; value : int }
  | Forged_completion of { queue : string; used_idx : int }
  | Empty_doorbell of { queue : string; avail_idx : int }
  | Trace_truncated of { dropped : int; withdrawn : int }
[@@deriving show { with_path = false }, eq]

let rule_name = function
  | Destructive_exec _ -> "E2-destructive-exec"
  | Gate_pkrs_leak _ -> "gate-pkrs-leak"
  | Sysret_if_down _ -> "E3-sysret-if-down"
  | Missing_shootdown _ -> "missing-shootdown"
  | Forged_pks_switch _ -> "E4-forged-pks-switch"
  | Wrpkrs_outside_gate _ -> "E1-wrpkrs-outside-gate"
  | Forged_completion _ -> "io-forged-completion"
  | Empty_doorbell _ -> "io-empty-doorbell"
  | Trace_truncated _ -> "trace-truncated"

let subject = function
  | Destructive_exec { cpu; _ }
  | Gate_pkrs_leak { cpu; _ }
  | Sysret_if_down { cpu; _ }
  | Forged_pks_switch { cpu; _ }
  | Wrpkrs_outside_gate { cpu; _ } ->
      Printf.sprintf "cpu %d" cpu
  | Missing_shootdown { container; cpu; _ } -> Printf.sprintf "container %d cpu %d" container cpu
  | Forged_completion { queue; _ } | Empty_doorbell { queue; _ } ->
      Printf.sprintf "queue %s" queue
  | Trace_truncated _ -> "recorder"

(* The shootdown rule needs the fill/invalidate history per (cpu, pcid)
   and the container -> pcid correlation from Container_boot events. *)
type shootdown_state = {
  c2p : (int, int) Hashtbl.t;  (** container -> pcid *)
  fills : (int * int, (int, unit) Hashtbl.t) Hashtbl.t;  (** (cpu, pcid) -> cached vpns *)
  pending : (int * int * int, int) Hashtbl.t;  (** (cpu, pcid, vpn) -> container *)
}

let fills_of st key =
  match Hashtbl.find_opt st.fills key with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 64 in
      Hashtbl.replace st.fills key s;
      s

let run ?(dropped = 0) (events : Hw.Probe.event list) : finding list =
  let out = ref [] in
  let add f = out := f :: !out in
  (* Rule suppressions caused by the truncated prefix, reported
     alongside the drop count so a clean verdict on a truncated trace
     is visibly weaker than one on a complete trace. *)
  let withdrawn = ref 0 in
  let st = { c2p = Hashtbl.create 8; fills = Hashtbl.create 16; pending = Hashtbl.create 16 } in
  (* Per-CPU gate nesting depth, for the wrpkrs-outside-gate rule. *)
  let depth : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let get_depth cpu = Option.value (Hashtbl.find_opt depth cpu) ~default:0 in
  (* wrpkrs seen at depth 0: candidates, withdrawn if a later unmatched
     Gate_exit shows the trace started mid-gate (ring-buffer drop). *)
  let wrpkrs_cands : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  (* Per-queue used idx at the last completion interrupt, for the
     forged-completion rule (an interrupt must cover freshly published
     used entries). *)
  let last_used : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let resolve_vpn ~cpu ~pcid vpn =
    Hashtbl.remove st.pending (cpu, pcid, vpn);
    (match Hashtbl.find_opt st.fills (cpu, pcid) with
    | Some s -> Hashtbl.remove s vpn
    | None -> ())
  in
  List.iter
    (fun (ev : Hw.Probe.event) ->
      match ev with
      | Hw.Probe.Priv_exec { cpu; mnemonic; destructive; pkrs; blocked } ->
          if destructive && pkrs <> 0 && not blocked then
            add (Destructive_exec { cpu; mnemonic; pkrs })
      | Hw.Probe.Sysret { cpu; pkrs; if_after } ->
          if pkrs <> 0 && not if_after then add (Sysret_if_down { cpu; pkrs })
      | Hw.Probe.Gate_enter { cpu; _ } -> Hashtbl.replace depth cpu (get_depth cpu + 1)
      | Hw.Probe.Gate_exit { cpu; gate; entry_pkrs; pkrs } ->
          if get_depth cpu = 0 then begin
            (* Unmatched exit: the enter (and anything between) fell
               off the ring buffer — withdraw wrpkrs candidates that
               may have been inside that gate. *)
            (match Hashtbl.find_opt wrpkrs_cands cpu with
            | Some cands -> withdrawn := !withdrawn + List.length cands
            | None -> ());
            Hashtbl.remove wrpkrs_cands cpu
          end
          else Hashtbl.replace depth cpu (get_depth cpu - 1);
          if pkrs <> entry_pkrs then
            add
              (Gate_pkrs_leak
                 { cpu; gate = Hw.Probe.gate_name gate; entry_pkrs; exit_pkrs = pkrs })
      | Hw.Probe.Wrpkrs { cpu; value } ->
          if get_depth cpu = 0 then
            Hashtbl.replace wrpkrs_cands cpu
              (value :: Option.value (Hashtbl.find_opt wrpkrs_cands cpu) ~default:[])
      | Hw.Probe.Idt_deliver { cpu; vector; hardware; pks_switch; pkrs_before; pkrs_after } ->
          if
            ((not hardware) && pkrs_after <> pkrs_before)
            || (hardware && pks_switch && pkrs_after <> 0)
          then add (Forged_pks_switch { cpu; vector; pkrs_before; pkrs_after })
      | Hw.Probe.Container_boot { container; pcid } -> Hashtbl.replace st.c2p container pcid
      | Hw.Probe.Tlb_fill { cpu; pcid; vpn; _ } ->
          Hashtbl.replace (fills_of st (cpu, pcid)) vpn ();
          (* A re-fill re-derives the translation from the live tables:
             the stale entry is gone. *)
          Hashtbl.remove st.pending (cpu, pcid, vpn)
      | Hw.Probe.Tlb_invlpg { cpu; pcid; vpn } ->
          resolve_vpn ~cpu ~pcid vpn;
          resolve_vpn ~cpu ~pcid (vpn land lnot 511)
      | Hw.Probe.Tlb_flush_pcid { cpu; pcid } ->
          (match Hashtbl.find_opt st.fills (cpu, pcid) with
          | Some s -> Hashtbl.reset s
          | None -> ());
          Hashtbl.iter
            (fun (c, p, v) _ -> if c = cpu && p = pcid then Hashtbl.remove st.pending (c, p, v))
            (Hashtbl.copy st.pending)
      | Hw.Probe.Pte_downgrade { container; vpn; _ } -> (
          match Hashtbl.find_opt st.c2p container with
          | None -> ()
          | Some pcid ->
              let huge_vpn = vpn land lnot 511 in
              Hashtbl.iter
                (fun (cpu, p) cached ->
                  if p = pcid then begin
                    if Hashtbl.mem cached vpn then
                      Hashtbl.replace st.pending (cpu, pcid, vpn) container;
                    if huge_vpn <> vpn && Hashtbl.mem cached huge_vpn then
                      Hashtbl.replace st.pending (cpu, pcid, huge_vpn) container
                  end)
                st.fills)
      | Hw.Probe.Io_doorbell { queue; avail_idx; in_flight } ->
          (* A doorbell with no new avail entries: phantom kick — either
             a wasted exit or a probe of the host's service path. *)
          if in_flight <= 0 then add (Empty_doorbell { queue; avail_idx })
      | Hw.Probe.Io_completion { queue; used_idx; serviced } ->
          (* A completion interrupt must cover used entries published
             since the last one; anything else is forged (interrupt
             injection with no serviced work behind it). *)
          let prev = Hashtbl.find_opt last_used queue in
          let forged =
            serviced <= 0 || match prev with Some u -> used_idx <= u | None -> used_idx <= 0
          in
          if forged then add (Forged_completion { queue; used_idx });
          Hashtbl.replace last_used queue (max used_idx (Option.value prev ~default:0))
      | Hw.Probe.Iret _ | Hw.Probe.Cr3_load _ | Hw.Probe.Pks_denied _ | Hw.Probe.Ksm_op _
      | Hw.Probe.Mm_op _ | Hw.Probe.Mem_read _ | Hw.Probe.Mem_write _
      | Hw.Probe.Domain_spawn _ | Hw.Probe.Domain_join _ ->
          (* Mem_* and the domain edges belong to Racecheck's
             happens-before pass, not the temporal rules. *)
          ())
    events;
  (* Verdicts for whatever is still outstanding. *)
  Hashtbl.iter
    (fun (cpu, pcid, vpn) container -> add (Missing_shootdown { container; cpu; pcid; vpn }))
    st.pending;
  Hashtbl.iter
    (fun cpu values -> List.iter (fun value -> add (Wrpkrs_outside_gate { cpu; value })) values)
    wrpkrs_cands;
  if dropped > 0 then add (Trace_truncated { dropped; withdrawn = !withdrawn });
  List.rev !out
