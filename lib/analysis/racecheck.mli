(** Dynamic cross-domain access checker.

    Replays a merged multi-domain probe trace (every event paired with
    the id of the domain that emitted it, as produced by
    {!Hw.Domain_shard} replay and exposed by {!Trace.tagged_events})
    and flags any traced physical-memory object — a [(mem_id, pfn)]
    frame or PTE-arena slot of some {!Hw.Phys_mem} instance — touched
    by two domains without an intervening
    {!Hw.Probe.event.Domain_spawn}/{!Hw.Probe.event.Domain_join}
    happens-before edge, using per-domain vector clocks (the FastTrack
    last-write-epoch + read-set discipline).

    Concurrent reads are not races; write/write and read/write pairs
    between unordered domains are.  Enable {!Hw.Probe.set_mem_trace}
    around the run so {!Hw.Phys_mem} actually emits the
    [Mem_read]/[Mem_write] stream. *)

type race = {
  mem : int;  (** Phys_mem instance ({!Hw.Phys_mem.mem_id}) *)
  pfn : int;
  first_dom : int;
  first_write : bool;
  second_dom : int;
  second_write : bool;
}

val pp_race : Format.formatter -> race -> unit
val show_race : race -> string
val equal_race : race -> race -> bool

type report = {
  races : race list;  (** deduped per (mem, pfn, domain pair), stream order *)
  events : int;  (** total events replayed *)
  accesses : int;  (** [Mem_read]/[Mem_write] events examined *)
  objects : int;  (** distinct (mem, pfn) objects touched *)
  domains : int;  (** distinct domain ids seen *)
  edges : int;  (** spawn/join happens-before edges *)
}

val check : (int * Hw.Probe.event) list -> report
(** Replay a tagged stream, oldest first. *)

val of_trace : Trace.t -> report
(** [check] over {!Trace.tagged_events}. *)

val is_clean : report -> bool

val pp_report : Format.formatter -> report -> unit

val findings : report -> Report.Findings.t list
(** Races as critical [domain-race] report rows. *)
