(** CKI invariant checker: whole-machine sanitizer + trace lint engine.

    Two independent halves:

    - {!Invariants}: a from-scratch walker over live machine state
      (page tables in simulated physical memory, TLBs, frame metadata),
      cross-checked against the monitor's claimed state — I1–I3, leaf
      reachability, W^X, kernel-exec freeze, CoW read-only sharing,
      per-vCPU copy coherence, TLB coherence, segment disjointness;
    - {!Trace} + {!Lint}: a bounded event recorder fed by the
      {!Hw.Probe} hook points, and temporal rules over the stream
      (gate pairing, PKRS discipline, TLB shootdowns).

    Integration tests, the examples, `cki_demo --check` and the
    snapshot subsystem (which runs {!check_machine} on every restored
    or cloned container before handing it out) use both halves. *)

module Trace : module type of Trace
module Invariants : module type of Invariants
module Lint : module type of Lint
module Racecheck : module type of Racecheck

type result = {
  violations : Invariants.violation list;
  lints : Lint.finding list;
}

val check_machine : containers:Cki.Container.t list -> Invariants.violation list
(** Sanitize live machine state: {!Invariants.check_machine}. *)

val lint_trace : Trace.t -> Lint.finding list
(** Run the temporal rules over a captured event stream, passing the
    recorder's drop count so ring-buffer truncation is surfaced as a
    [Lint.Trace_truncated] finding. *)

val is_clean : result -> bool
(** No violations and no fatal lints. [Lint.Trace_truncated] is
    informational (reduced coverage, not a violation) and does not
    make a result unclean. *)

val findings : result -> Report.Findings.t list
(** Both halves' findings as report rows ([Maps_declared_ptp] is the
    only warning, [Trace_truncated] the only info; everything else is
    critical). *)

val report : ?title:string -> result -> string

val assert_clean : ?label:string -> result -> unit
(** @raise Failure with the rendered report on any finding. *)

val run : containers:Cki.Container.t list -> (unit -> 'a) -> 'a * result
(** Run [f] with a recorder attached, then sanitize the machine state
    and lint the captured trace. *)

val checked : ?label:string -> (unit -> 'a * Cki.Container.t list) -> 'a
(** Scenario wrapper for code that boots its containers inside [f]:
    sanitizes the machine and lints the trace afterwards, failing on
    any finding. *)
