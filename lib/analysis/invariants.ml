(* Whole-machine invariant scanner.

   Everything here is derived from first principles: the walker starts
   at each declared root and follows raw physical-memory entry reads
   (Hw.Phys_mem.read_entry), reconstructing the virtual address of
   every mapping as it goes.  The monitor's own claimed state
   (Ksm.declared_ptps, Ksm.roots, Ksm.segments...) is used purely as
   the reference to cross-check against — none of the KSM's validation
   paths run. *)

type violation =
  | Undeclared_ptp of {
      container : int;
      table : Hw.Addr.pfn;
      index : int;
      level : int;
      child : Hw.Addr.pfn;
    }
  | Ptp_level_mismatch of { container : int; ptp : Hw.Addr.pfn; claimed : int; used_at : int }
  | Ptp_kind_mismatch of { container : int; ptp : Hw.Addr.pfn; kind : string }
  | Guest_writable_ptp of { container : int; ptp : Hw.Addr.pfn; va : Hw.Addr.va }
  | Maps_declared_ptp of { container : int; va : Hw.Addr.va; ptp : Hw.Addr.pfn }
  | Targets_monitor of { container : int; va : Hw.Addr.va; pfn : Hw.Addr.pfn; owner : string }
  | Outside_delegation of { container : int; va : Hw.Addr.va; pfn : Hw.Addr.pfn; owner : string }
  | Kernel_exec_leaf of { container : int; va : Hw.Addr.va; pfn : Hw.Addr.pfn }
  | Wx_leaf of { container : int; va : Hw.Addr.va; pfn : Hw.Addr.pfn }
  | Missing_splice of { container : int; copy : Hw.Addr.pfn; slot : int }
  | Copy_divergence of { container : int; root : Hw.Addr.pfn; copy : Hw.Addr.pfn; slot : int }
  | Stale_tlb of { container : int; cpu : int; pcid : int; vpn : int; reason : string }
  | Segment_overlap of { container : int; other : int; base : Hw.Addr.pfn; frames : int }
  | Segment_owner of { container : int; pfn : Hw.Addr.pfn; owner : string }
  | Cow_writable of { container : int; va : Hw.Addr.va; pfn : Hw.Addr.pfn }
[@@deriving show { with_path = false }, eq]

let rule_name = function
  | Undeclared_ptp _ -> "I1-undeclared-ptp"
  | Ptp_level_mismatch _ -> "I1-level-mismatch"
  | Ptp_kind_mismatch _ -> "I1-kind-mismatch"
  | Guest_writable_ptp _ -> "I2-writable-ptp"
  | Maps_declared_ptp _ -> "I2-maps-ptp"
  | Targets_monitor _ -> "pte-targets-monitor"
  | Outside_delegation _ -> "pte-outside-delegation"
  | Kernel_exec_leaf _ -> "kernel-exec-leaf"
  | Wx_leaf _ -> "wx-leaf"
  | Missing_splice _ -> "I3-missing-splice"
  | Copy_divergence _ -> "I3-copy-divergence"
  | Stale_tlb _ -> "stale-tlb"
  | Segment_overlap _ -> "segment-overlap"
  | Segment_owner _ -> "segment-owner"
  | Cow_writable _ -> "cow-writable-leaf"

let subject = function
  | Stale_tlb { container; cpu; _ } -> Printf.sprintf "container %d cpu %d" container cpu
  | Undeclared_ptp { container; _ }
  | Ptp_level_mismatch { container; _ }
  | Ptp_kind_mismatch { container; _ }
  | Guest_writable_ptp { container; _ }
  | Maps_declared_ptp { container; _ }
  | Targets_monitor { container; _ }
  | Outside_delegation { container; _ }
  | Kernel_exec_leaf { container; _ }
  | Wx_leaf { container; _ }
  | Missing_splice { container; _ }
  | Copy_divergence { container; _ }
  | Segment_overlap { container; _ }
  | Segment_owner { container; _ }
  | Cow_writable { container; _ } ->
      Printf.sprintf "container %d" container

(* Bytes of virtual address space one entry covers at [lvl]. *)
let span lvl = Hw.Addr.page_size * (1 lsl (9 * (lvl - 1)))

let check_container (c : Cki.Container.t) : violation list =
  let ksm = c.Cki.Container.ksm in
  let mem = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
  let id = c.Cki.Container.container_id in
  let total = Hw.Phys_mem.total_frames mem in
  let out = ref [] in
  let add v = out := v :: !out in
  let oname o = Hw.Phys_mem.show_owner o in
  let read ~pfn ~index = Hw.Phys_mem.read_entry mem ~pfn ~index in
  let in_kernel_image va = va >= Cki.Layout.kernel_image_base && va < Cki.Layout.ksm_base in
  let frozen = Cki.Ksm.kernel_exec_frozen ksm in
  let is_table pfn =
    pfn >= 0 && pfn < total
    && match Hw.Phys_mem.kind mem pfn with Hw.Phys_mem.Page_table _ -> true | _ -> false
  in

  (* -------------------------------------------------------------- *)
  (* Leaf rules                                                      *)
  (* -------------------------------------------------------------- *)
  let check_leaf ~va e =
    let pfn = Hw.Pte.pfn e in
    let pkey = Hw.Pte.pkey e in
    let writable = Hw.Pte.is_writable e in
    let nx = Hw.Pte.is_nx e in
    let user = Hw.Pte.is_user e in
    if pfn < 0 || pfn >= total then
      add (Outside_delegation { container = id; va; pfn; owner = "out-of-range" })
    else begin
      (match Hw.Phys_mem.owner mem pfn with
      | Hw.Phys_mem.Ksm k when k = id ->
          (* The monitor's own regions (KSM code/data, per-vCPU areas)
             are the only legitimate mappings of monitor frames, and
             they carry pkey_ksm so guest rights exclude them. *)
          if not ((Cki.Layout.in_ksm va || Cki.Layout.in_pervcpu va) && pkey = Hw.Pks.pkey_ksm)
          then add (Targets_monitor { container = id; va; pfn; owner = oname (Hw.Phys_mem.Ksm k) })
      | Hw.Phys_mem.Container k when k = id ->
          if not (Cki.Ksm.owns_frame ksm pfn) then begin
            (* The guest kernel image is boot-allocated outside the
               delegated segments: Kernel_code frames are legitimate
               only read-only inside the image window. *)
            let image_frame =
              match Hw.Phys_mem.kind mem pfn with
              | Hw.Phys_mem.Kernel_code -> in_kernel_image va && not writable
              | _ -> false
            in
            if not image_frame then
              add
                (Outside_delegation
                   { container = id; va; pfn; owner = oname (Hw.Phys_mem.Container k) })
          end
          else begin
            match Cki.Ksm.page_state_of ksm pfn with
            | Cki.Ksm.Ksm_private ->
                add
                  (Targets_monitor
                     { container = id; va; pfn; owner = oname (Hw.Phys_mem.Container k) })
            | Cki.Ksm.Guest_ptp _ when pkey <> Hw.Pks.pkey_ptp ->
                (* I2: outside the pkey_ptp read-only view, any mapping
                   of a declared PTP is suspect; a writable one is the
                   classic nested-kernel break. *)
                if writable then add (Guest_writable_ptp { container = id; ptp = pfn; va })
                else add (Maps_declared_ptp { container = id; va; ptp = pfn })
            | Cki.Ksm.Guest_ptp _ | Cki.Ksm.Guest_data -> ()
          end
      | Hw.Phys_mem.Container _ when Hw.Phys_mem.is_shared_ro mem pfn ->
          (* CoW-shared template frame: another container's frame is
             legitimately visible here, but only read-only — the
             blanket check below flags any writable mapping. *)
          ()
      | (Hw.Phys_mem.Host | Hw.Phys_mem.Ksm _) as o ->
          add (Targets_monitor { container = id; va; pfn; owner = oname o })
      | o -> add (Outside_delegation { container = id; va; pfn; owner = oname o }));
      (* A CoW-shared frame (template pages referenced by warm clones,
         and the template's own frozen pages) must never be writable
         through any container's tables — a writable alias would let
         one clone corrupt every sibling. *)
      if Hw.Phys_mem.is_shared_ro mem pfn && writable then
        add (Cow_writable { container = id; va; pfn });
      (* The monitor's own leaves (pkey_ksm) are TCB and exempt; for
         everything guest-reachable: W^X, and no kernel-executable
         mappings outside the frozen image. *)
      if pkey <> Hw.Pks.pkey_ksm then begin
        if writable && not nx then add (Wx_leaf { container = id; va; pfn });
        if frozen && (not user) && (not nx) && not (in_kernel_image va) then
          add (Kernel_exec_leaf { container = id; va; pfn })
      end
    end
  in

  (* -------------------------------------------------------------- *)
  (* The walk                                                        *)
  (* -------------------------------------------------------------- *)
  let visited : (Hw.Addr.pfn * int * Hw.Addr.va, unit) Hashtbl.t = Hashtbl.create 1024 in
  let rec walk_table ~lvl ~table ~va_base =
    if not (Hashtbl.mem visited (table, lvl, va_base)) then begin
      Hashtbl.add visited (table, lvl, va_base) ();
      for idx = 0 to Hw.Addr.entries_per_table - 1 do
        let e = read ~pfn:table ~index:idx in
        if Hw.Pte.is_present e then begin
          let va = va_base + (idx * span lvl) in
          if lvl = 1 || (lvl = 2 && Hw.Pte.is_huge e) then check_leaf ~va e
          else begin
            let child = Hw.Pte.pfn e in
            let clvl = lvl - 1 in
            (* I1: anything used as a page-table page must be declared
               (guest frames) or monitor-built (KSM frames). *)
            if child < 0 || child >= total then
              add (Undeclared_ptp { container = id; table; index = idx; level = clvl; child })
            else begin
              (match Hw.Phys_mem.owner mem child with
              | Hw.Phys_mem.Ksm k when k = id -> (
                  match Hw.Phys_mem.kind mem child with
                  | Hw.Phys_mem.Page_table l ->
                      if l <> clvl then
                        add
                          (Ptp_level_mismatch
                             { container = id; ptp = child; claimed = l; used_at = clvl })
                  | k ->
                      add
                        (Ptp_kind_mismatch
                           { container = id; ptp = child; kind = Hw.Phys_mem.show_kind k }))
              | Hw.Phys_mem.Container k when k = id -> (
                  match Cki.Ksm.page_state_of ksm child with
                  | Cki.Ksm.Guest_ptp l ->
                      if l <> clvl then
                        add
                          (Ptp_level_mismatch
                             { container = id; ptp = child; claimed = l; used_at = clvl })
                  | Cki.Ksm.Guest_data | Cki.Ksm.Ksm_private ->
                      add
                        (Undeclared_ptp
                           { container = id; table; index = idx; level = clvl; child }))
              | _ ->
                  add (Undeclared_ptp { container = id; table; index = idx; level = clvl; child }));
              (* Descend only through frames whose metadata says they
                 hold a table: reading "entries" of a data frame would
                 fabricate an empty table and hide the corruption. *)
              if is_table child then walk_table ~lvl:clvl ~table:child ~va_base:va
            end
          end
        end
      done
    end
  in

  (* -------------------------------------------------------------- *)
  (* Roots, template splices, per-vCPU copy coherence                *)
  (* -------------------------------------------------------------- *)
  let strip = Hw.Pte.clear_accessed_dirty in
  let tslots = Cki.Ksm.template_slots ksm in
  let pervcpu = Cki.Ksm.pervcpu ksm in
  List.iter
    (fun (root, copies) ->
      walk_table ~lvl:4 ~table:root ~va_base:0;
      List.iter
        (fun slot ->
          if not (Hw.Pte.is_present (read ~pfn:root ~index:slot)) then
            add (Missing_splice { container = id; copy = root; slot }))
        tslots;
      Array.iteri
        (fun v copy ->
          walk_table ~lvl:4 ~table:copy ~va_base:0;
          List.iter
            (fun slot ->
              if not (Int64.equal (strip (read ~pfn:copy ~index:slot)) (strip (read ~pfn:root ~index:slot)))
              then add (Missing_splice { container = id; copy; slot }))
            tslots;
          let expect = Cki.Pervcpu.l4_entry pervcpu v in
          if
            not
              (Int64.equal
                 (strip (read ~pfn:copy ~index:Cki.Layout.l4_pervcpu))
                 (strip expect))
          then add (Missing_splice { container = id; copy; slot = Cki.Layout.l4_pervcpu });
          (* A/D bits propagate from the copies, so compare modulo
             accessed/dirty. *)
          for slot = 0 to Cki.Layout.l4_user_max do
            if
              not
                (Int64.equal (strip (read ~pfn:copy ~index:slot)) (strip (read ~pfn:root ~index:slot)))
            then add (Copy_divergence { container = id; root; copy; slot })
          done)
        copies)
    (Cki.Ksm.roots ksm);

  (* Declared-PTP metadata: the frame tables must agree with the
     monitor's level claims. *)
  List.iter
    (fun (ptp, lvl) ->
      match Hw.Phys_mem.kind mem ptp with
      | Hw.Phys_mem.Page_table l when l = lvl -> ()
      | k -> add (Ptp_kind_mismatch { container = id; ptp; kind = Hw.Phys_mem.show_kind k }))
    (Cki.Ksm.declared_ptps ksm);

  (* -------------------------------------------------------------- *)
  (* TLB coherence: every cached translation of this container's PCID *)
  (* must still be derivable from the vCPU's current root.            *)
  (* -------------------------------------------------------------- *)
  let rewalk ~root va =
    let rec go lvl table =
      if not (is_table table) then None
      else
        let e = read ~pfn:table ~index:(Hw.Addr.index_at_level ~lvl va) in
        if not (Hw.Pte.is_present e) then None
        else if lvl = 1 || (lvl = 2 && Hw.Pte.is_huge e) then Some e
        else go (lvl - 1) (Hw.Pte.pfn e)
    in
    go 4 root
  in
  (* Under PCID, translations cached while a per-vCPU copy was loaded
     legitimately persist after cr3 returns to another root of the
     same container (PKS, not the walk, guards e.g. the per-vCPU
     area).  A cached entry is stale only if NO declared root of the
     container still derives it. *)
  let all_roots =
    List.concat_map (fun (root, copies) -> root :: Array.to_list copies) (Cki.Ksm.roots ksm)
  in
  Array.iter
    (fun (cpu : Hw.Cpu.t) ->
      let candidates =
        if List.mem cpu.Hw.Cpu.cr3 all_roots then all_roots else cpu.Hw.Cpu.cr3 :: all_roots
      in
      Hw.Tlb.fold cpu.Hw.Cpu.tlb
        (fun () ~pcid ~vpn (entry : Hw.Tlb.entry) ->
          if pcid = c.Cki.Container.pcid then
            let stale reason =
              add (Stale_tlb { container = id; cpu = cpu.Hw.Cpu.id; pcid; vpn; reason })
            in
            let verdicts =
              List.map
                (fun root ->
                  match rewalk ~root (Hw.Addr.va_of_vpn vpn) with
                  | None -> Some "no live translation"
                  | Some e ->
                      if Hw.Pte.pfn e <> entry.Hw.Tlb.pfn then Some "maps a different frame"
                      else if entry.Hw.Tlb.flags.Hw.Pte.writable && not (Hw.Pte.is_writable e)
                      then Some "stale write permission"
                      else None)
                candidates
            in
            if not (List.mem None verdicts) then
              stale (Option.value (List.hd verdicts) ~default:"no live translation"))
        ())
    c.Cki.Container.cpus;
  List.rev !out

let check_segments (containers : Cki.Container.t list) : violation list =
  let out = ref [] in
  let add v = out := v :: !out in
  let info =
    List.map (fun c -> (c.Cki.Container.container_id, Cki.Ksm.segments c.Cki.Container.ksm, c)) containers
  in
  (* Delegations can only collide within one physical memory: compare
     only containers hosted on the same machine. *)
  let mem_of (c : Cki.Container.t) = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
  let rec pairs = function
    | [] -> ()
    | (ida, segs_a, ca) :: rest ->
        List.iter
          (fun (idb, segs_b, cb) ->
            if mem_of ca == mem_of cb then
              List.iter
                (fun (ba, na) ->
                  List.iter
                    (fun (bb, nb) ->
                      let lo = max ba bb and hi = min (ba + na) (bb + nb) in
                      if lo < hi then
                        add
                          (Segment_overlap
                             { container = ida; other = idb; base = lo; frames = hi - lo }))
                    segs_b)
                segs_a)
          rest;
        pairs rest
  in
  pairs info;
  List.iter
    (fun (id, segs, c) ->
      let mem = Hw.Machine.mem (Cki.Host.machine c.Cki.Container.host) in
      List.iter
        (fun (base, n) ->
          for pfn = base to base + n - 1 do
            match Hw.Phys_mem.owner mem pfn with
            | Hw.Phys_mem.Container k when k = id -> ()
            | o -> add (Segment_owner { container = id; pfn; owner = Hw.Phys_mem.show_owner o })
          done)
        segs)
    info;
  List.rev !out

let check_machine ~containers =
  List.concat_map check_container containers @ check_segments containers
