(* Bounded event recorder: a queue with drop-oldest overflow. *)

type t = {
  capacity : int;
  q : Hw.Probe.event Queue.t;
  mutable dropped : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; q = Queue.create (); dropped = 0 }

let record t ev =
  if Queue.length t.q >= t.capacity then begin
    ignore (Queue.pop t.q);
    t.dropped <- t.dropped + 1
  end;
  Queue.add ev t.q

let attach t = Hw.Probe.set_sink (record t)
let detach () = Hw.Probe.clear_sink ()
let events t = List.of_seq (Queue.to_seq t.q)
let length t = Queue.length t.q
let dropped t = t.dropped

let clear t =
  Queue.clear t.q;
  t.dropped <- 0

let with_recorder ?capacity f =
  let t = create ?capacity () in
  attach t;
  Fun.protect ~finally:detach (fun () ->
      let r = f () in
      (r, t))
