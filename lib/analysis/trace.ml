(* Bounded event recorder over an int-encoded probe ring.

   Recording costs a few array stores per event (no allocation); the
   stream is decoded back into [Hw.Probe.event] values only when the
   lint pass asks for it.  Overflow drops the oldest records, so long
   scenarios degrade gracefully instead of growing without bound. *)

type t = { ring : Hw.Probe.ring }

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { ring = Hw.Probe.ring_create ~capacity () }

let record t ev = Hw.Probe.ring_record t.ring ev
let attach t = Hw.Probe.set_ring t.ring
let detach () = Hw.Probe.clear_sink ()
let events t = Hw.Probe.ring_events t.ring
let tagged_events t = Hw.Probe.ring_events_tagged t.ring
let length t = Hw.Probe.ring_length t.ring
let dropped t = Hw.Probe.ring_dropped t.ring
let clear t = Hw.Probe.ring_clear t.ring

let with_recorder ?capacity f =
  let t = create ?capacity () in
  attach t;
  Fun.protect ~finally:detach (fun () ->
      let r = f () in
      (r, t))
