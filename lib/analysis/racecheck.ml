(* Dynamic cross-domain access checker over a merged probe trace.

   The sharded engines ([Hw.Domain_shard]) replay every worker's probe
   ring into the parent's sink with the original per-event domain tags
   preserved, bracketed by [Domain_spawn]/[Domain_join] edges.  This
   module replays that merged stream and checks every traced
   physical-memory access ([Mem_read]/[Mem_write], keyed on
   [(mem_id, pfn)] because two shards legitimately own distinct
   [Phys_mem] instances with overlapping pfn ranges) against
   vector-clock happens-before order:

   - each domain [d] carries a vector clock [VC_d];
   - [Domain_spawn {parent; child}]: the child inherits the parent's
     clock ([VC_c := VC_c ⊔ VC_p]) and the parent then ticks its own
     component, so parent work *before* the spawn is ordered before
     the child but later parent work is concurrent with it;
   - [Domain_join {parent; child}]: the parent absorbs the child
     ([VC_p := VC_p ⊔ VC_c]), ordering everything the child did
     before everything the parent does next;
   - every access is stamped with the epoch [(d, VC_d[d])].  A later
     access by domain [e] races with it iff [d <> e] and the epoch is
     not covered by [e]'s clock ([VC_d[d] > VC_e[d]]) — i.e. no
     spawn/join path connects them — and at least one of the two is a
     write (concurrent reads are fine).

   This is the FastTrack discipline reduced to what a deterministic
   replayed trace needs: per object we keep the last-write epoch and
   the set of read epochs since that write. *)

module Imap = Map.Make (Int)

type race = {
  mem : int;  (** Phys_mem instance ([Hw.Phys_mem.mem_id]) *)
  pfn : int;
  first_dom : int;
  first_write : bool;
  second_dom : int;
  second_write : bool;
}
[@@deriving show { with_path = false }, eq]

type report = {
  races : race list;  (** deduped per (mem, pfn, dom pair), stream order *)
  events : int;  (** total events replayed *)
  accesses : int;  (** Mem_read/Mem_write events examined *)
  objects : int;  (** distinct (mem, pfn) objects touched *)
  domains : int;  (** distinct domain ids seen *)
  edges : int;  (** spawn/join happens-before edges *)
}

let is_clean r = r.races = []

let pp_report fmt r =
  Format.fprintf fmt "racecheck: %d race(s) over %d accesses to %d objects by %d domain(s)"
    (List.length r.races) r.accesses r.objects r.domains

(* Vector clocks as int maps (domain ids are sparse: the parent's id
   survives across sharded sections while worker ids are fresh each
   time). *)
let vc_get vc d = Option.value (Imap.find_opt d vc) ~default:0
let vc_join a b = Imap.union (fun _ x y -> Some (max x y)) a b

(* Per-object access history: last write epoch + reads since. *)
type obj = { mutable w : (int * int) option; mutable rs : int Imap.t }

let check (events : (int * Hw.Probe.event) list) : report =
  let clocks : (int, int Imap.t) Hashtbl.t = Hashtbl.create 8 in
  (* A domain's first appearance starts its clock at 1 on its own
     component, so its epochs are never covered by a sibling that
     merely shares the parent's prefix. *)
  let vc_of d =
    match Hashtbl.find_opt clocks d with
    | Some vc -> vc
    | None ->
        let vc = Imap.singleton d 1 in
        Hashtbl.replace clocks d vc;
        vc
  in
  let objs : (int * int, obj) Hashtbl.t = Hashtbl.create 256 in
  let obj_of key =
    match Hashtbl.find_opt objs key with
    | Some o -> o
    | None ->
        let o = { w = None; rs = Imap.empty } in
        Hashtbl.replace objs key o;
        o
  in
  let races = ref [] in
  let seen : (int * int * int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let report_race ~mem ~pfn ~first_dom ~first_write ~second_dom ~second_write =
    let a = min first_dom second_dom and b = max first_dom second_dom in
    if not (Hashtbl.mem seen (mem, pfn, a, b)) then begin
      Hashtbl.replace seen (mem, pfn, a, b) ();
      races := { mem; pfn; first_dom; first_write; second_dom; second_write } :: !races
    end
  in
  let n_events = ref 0 in
  let n_accesses = ref 0 in
  let n_edges = ref 0 in
  (* [covered (d, c) vc]: is epoch (d, c) happens-before a state with
     clock [vc]? *)
  let covered (d, c) vc = c <= vc_get vc d in
  let access ~dom ~mem ~pfn ~write =
    incr n_accesses;
    let vc = vc_of dom in
    let o = obj_of (mem, pfn) in
    (match o.w with
    | Some (wd, wc) when wd <> dom && not (covered (wd, wc) vc) ->
        report_race ~mem ~pfn ~first_dom:wd ~first_write:true ~second_dom:dom
          ~second_write:write
    | _ -> ());
    if write then begin
      (* A write also races with any concurrent read since the last
         write. *)
      Imap.iter
        (fun rd rc ->
          if rd <> dom && not (covered (rd, rc) vc) then
            report_race ~mem ~pfn ~first_dom:rd ~first_write:false ~second_dom:dom
              ~second_write:true)
        o.rs;
      o.w <- Some (dom, vc_get vc dom);
      o.rs <- Imap.empty
    end
    else o.rs <- Imap.add dom (vc_get vc dom) o.rs
  in
  List.iter
    (fun (dom, (ev : Hw.Probe.event)) ->
      incr n_events;
      match ev with
      | Hw.Probe.Mem_read { mem; pfn } -> access ~dom ~mem ~pfn ~write:false
      | Hw.Probe.Mem_write { mem; pfn } -> access ~dom ~mem ~pfn ~write:true
      | Hw.Probe.Domain_spawn { parent; child } ->
          incr n_edges;
          let pvc = vc_of parent in
          Hashtbl.replace clocks child (vc_join (vc_of child) pvc);
          (* Tick the parent: its post-spawn work is concurrent with
             the child. *)
          Hashtbl.replace clocks parent (Imap.add parent (vc_get pvc parent + 1) pvc)
      | Hw.Probe.Domain_join { parent; child } ->
          incr n_edges;
          Hashtbl.replace clocks parent (vc_join (vc_of parent) (vc_of child))
      | _ -> ())
    events;
  {
    races = List.rev !races;
    events = !n_events;
    accesses = !n_accesses;
    objects = Hashtbl.length objs;
    domains = Hashtbl.length clocks;
    edges = !n_edges;
  }

let of_trace trace = check (Trace.tagged_events trace)

let findings r =
  List.map
    (fun rc ->
      Report.Findings.make ~severity:Report.Findings.Critical ~rule:"domain-race"
        ~subject:(Printf.sprintf "mem %d pfn %d" rc.mem rc.pfn)
        ~detail:(show_race rc))
    r.races
