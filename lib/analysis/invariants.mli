(** Whole-machine invariant scanner.

    An independent re-implementation of the security conditions CKI's
    monitor enforces inline (Section 4.3, Table 3 of the paper): the
    scanner re-walks every container's live 4-level page tables in
    simulated physical memory from scratch — raw {!Hw.Phys_mem} entry
    reads, no {!Cki.Ksm} validation path involved — and cross-checks the
    machine state it finds against what the monitor {e claims}
    (declared PTPs, declared roots, delegated segments).

    Because the walker shares no code with the KSM's enforcement, a bug
    that lets corrupt state through the monitor still trips the
    scanner, and vice versa. *)

type violation =
  | Undeclared_ptp of {
      container : int;
      table : Hw.Addr.pfn;  (** the table holding the offending entry *)
      index : int;
      level : int;  (** level the child would serve at *)
      child : Hw.Addr.pfn;
    }  (** I1: a non-leaf PTE references a frame not declared as a PTP *)
  | Ptp_level_mismatch of { container : int; ptp : Hw.Addr.pfn; claimed : int; used_at : int }
      (** a declared PTP is wired into the tree at the wrong level *)
  | Ptp_kind_mismatch of { container : int; ptp : Hw.Addr.pfn; kind : string }
      (** the frame metadata of a declared PTP is not [Page_table] *)
  | Guest_writable_ptp of { container : int; ptp : Hw.Addr.pfn; va : Hw.Addr.va }
      (** I2: a leaf grants the guest write access to a declared PTP *)
  | Maps_declared_ptp of { container : int; va : Hw.Addr.va; ptp : Hw.Addr.pfn }
      (** a declared PTP is mapped outside the read-only pkey_ptp view *)
  | Targets_monitor of { container : int; va : Hw.Addr.va; pfn : Hw.Addr.pfn; owner : string }
      (** a leaf reachable by the guest targets KSM or host memory *)
  | Outside_delegation of { container : int; va : Hw.Addr.va; pfn : Hw.Addr.pfn; owner : string }
      (** a leaf targets a frame outside the delegated hPA segments *)
  | Kernel_exec_leaf of { container : int; va : Hw.Addr.va; pfn : Hw.Addr.pfn }
      (** a kernel-executable mapping outside the frozen kernel image *)
  | Wx_leaf of { container : int; va : Hw.Addr.va; pfn : Hw.Addr.pfn }
      (** writable + executable guest mapping (W^X breach) *)
  | Missing_splice of { container : int; copy : Hw.Addr.pfn; slot : int }
      (** a top-level table lacks a fixed KSM/per-vCPU template slot *)
  | Copy_divergence of { container : int; root : Hw.Addr.pfn; copy : Hw.Addr.pfn; slot : int }
      (** a per-vCPU copy's user-range slot differs from the original *)
  | Stale_tlb of { container : int; cpu : int; pcid : int; vpn : int; reason : string }
      (** a cached translation no longer matches the live page tables *)
  | Segment_overlap of { container : int; other : int; base : Hw.Addr.pfn; frames : int }
      (** two containers' delegated hPA segments intersect *)
  | Segment_owner of { container : int; pfn : Hw.Addr.pfn; owner : string }
      (** a delegated frame's ownership metadata contradicts delegation *)
  | Cow_writable of { container : int; va : Hw.Addr.va; pfn : Hw.Addr.pfn }
      (** a CoW-shared template frame is reachable through a writable
          leaf — one clone could corrupt every sibling *)

val pp_violation : Format.formatter -> violation -> unit
val show_violation : violation -> string
val equal_violation : violation -> violation -> bool

val rule_name : violation -> string
(** Short stable identifier, e.g. ["I1-undeclared-ptp"]. *)

val subject : violation -> string
(** What the violation is about, e.g. ["container 0"]. *)

val check_container : Cki.Container.t -> violation list
(** Scan one container: page-table walk of every declared root and all
    its per-vCPU copies, declared-PTP metadata, template splices, copy
    coherence, and each vCPU's TLB against the live tables. *)

val check_segments : Cki.Container.t list -> violation list
(** Cross-container checks: segment disjointness and frame ownership. *)

val check_machine : containers:Cki.Container.t list -> violation list
(** [check_container] on every container plus [check_segments]. *)
