(* CKI invariant checker: whole-machine sanitizer + trace lint engine.

   Two independent halves:

     - {!Invariants}: a from-scratch walker over live machine state
       (page tables in simulated physical memory, TLBs, frame
       metadata), cross-checked against the monitor's claimed state;
     - {!Trace} + {!Lint}: a bounded event recorder fed by the
       Hw.Probe hook points, and temporal rules over the stream.

   Integration tests, the examples and `cki_demo --check` run both at
   the end of every scenario; fault-injection tests corrupt state or
   synthesize event sequences and assert each rule fires. *)

module Trace = Trace
module Invariants = Invariants
module Lint = Lint
module Racecheck = Racecheck

type result = {
  violations : Invariants.violation list;
  lints : Lint.finding list;
}

let check_machine ~containers = Invariants.check_machine ~containers
let lint_trace trace = Lint.run ~dropped:(Trace.dropped trace) (Trace.events trace)

(* Trace_truncated is informational (the recorder overflowed; coverage
   is reduced, nothing was violated) — it must not fail --check runs. *)
let fatal_lint = function Lint.Trace_truncated _ -> false | _ -> true

let is_clean r = r.violations = [] && not (List.exists fatal_lint r.lints)

let findings r =
  List.map
    (fun v ->
      let severity =
        match v with
        | Invariants.Maps_declared_ptp _ -> Report.Findings.Warning
        | _ -> Report.Findings.Critical
      in
      Report.Findings.make ~severity ~rule:(Invariants.rule_name v) ~subject:(Invariants.subject v)
        ~detail:(Invariants.show_violation v))
    r.violations
  @ List.map
      (fun f ->
        let severity =
          if fatal_lint f then Report.Findings.Critical else Report.Findings.Info
        in
        Report.Findings.make ~severity ~rule:(Lint.rule_name f) ~subject:(Lint.subject f)
          ~detail:(Lint.show_finding f))
      r.lints

let report ?(title = "CKI invariant check") r = Report.Findings.render ~title (findings r)

let assert_clean ?(label = "analysis") r =
  if not (is_clean r) then failwith (label ^ ": " ^ report ~title:label r)

(* Run [f] with a recorder attached, then sanitize the machine state
   and lint the captured trace. *)
let run ~containers f =
  let x, trace = Trace.with_recorder f in
  let r = { violations = check_machine ~containers; lints = lint_trace trace } in
  (x, r)

(* Scenario wrapper for code that boots its containers inside [f]:
   [f] returns its result alongside the containers to check; the
   machine is sanitized and the trace linted afterwards, failing on
   any finding. *)
let checked ?label (f : unit -> 'a * Cki.Container.t list) : 'a =
  let (x, containers), trace = Trace.with_recorder f in
  let r = { violations = check_machine ~containers; lints = lint_trace trace } in
  assert_clean ?label r;
  x
