(* Per-file fact extraction over the compiler-libs AST.

   One [Ast_iterator] pass collects everything the rule families need:
   cross-library module references, raw-memory write-sink mentions,
   [Gate_enter]/[Gate_exit] constructions, [Obj.magic] / [assert false]
   occurrences; a separate shallow walk over structure items inventories
   module-toplevel mutable state (the domain-sharding race hazards),
   honouring the [@@single_domain "reason"] escape hatch. *)

open Asttypes
open Parsetree

type toplevel_mutable = {
  tm_name : string;  (** the binding's name *)
  tm_kind : string;  (** what made it mutable, e.g. ["ref"] *)
  tm_line : int;
}

type t = {
  module_refs : (string * int) list;
      (** head module of every dotted path, with the first line it
          appears on — deduplicated per head *)
  sink_refs : (string * int) list;  (** raw-memory write sinks, every occurrence *)
  toplevel_mutables : toplevel_mutable list;
  undocumented_annots : (string * int) list;
      (** [@@single_domain] without a reason string *)
  single_domain_annots : (string * int * bool) list;
      (** every toplevel [@@single_domain] annotation as
          (binding, line, suppresses): [suppresses] is true when the
          binding really is module-toplevel mutable state, i.e. the
          annotation earns its keep; a [false] entry is stale. *)
  gate_enters : int list;  (** lines constructing [Probe.Gate_enter] *)
  gate_exits : int list;
  obj_magics : int list;
  assert_falses : int list;
}

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* The raw physical-memory mutators.  [Phys_mem] reads are fine
   anywhere (the invariant checker depends on them); these change frame
   contents or frame metadata and are the operations the CKI security
   argument says only the TCB may reach. *)
let write_sinks = [ "write_entry"; "clear_table"; "set_kind"; "set_owner"; "set_shared_ro" ]

let sink_module = "Phys_mem"

(* ------------------------------------------------------------------ *)
(* Longident classification                                            *)
(* ------------------------------------------------------------------ *)

let sink_of_path parts =
  match List.rev parts with
  | fn :: m :: _ when m = sink_module && List.mem fn write_sinks ->
      Some (String.concat "." parts)
  | _ -> None

(* `open Hw.Phys_mem` (or an alias of it) makes every sink reachable
   unqualified, which would blind the textual rule — flag the open
   itself. *)
let sink_of_module_path parts =
  match List.rev parts with
  | m :: _ when m = sink_module -> Some (String.concat "." parts ^ " (module access)")
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The iterator pass                                                   *)
(* ------------------------------------------------------------------ *)

type acc = {
  mutable refs : (string * int) list;
  mutable sinks : (string * int) list;
  mutable enters : int list;
  mutable exits : int list;
  mutable magics : int list;
  mutable asserts : int list;
}

let add_ref acc head line =
  if not (List.mem_assoc head acc.refs) then acc.refs <- (head, line) :: acc.refs

(* A dotted value/type/constructor path [A.B.x] references module [A];
   a bare [x] references nothing. *)
let value_path acc lid loc =
  match Longident.flatten lid with
  | head :: _ :: _ as parts ->
      add_ref acc head (line_of loc);
      (match sink_of_path parts with
      | Some s -> acc.sinks <- (s, line_of loc) :: acc.sinks
      | None -> ())
  | _ -> ()

(* A module path [A.B] (open, alias, functor argument) references [A]
   even when it is a single component. *)
let module_path acc lid loc =
  match Longident.flatten lid with
  | head :: _ as parts ->
      if String.length head > 0 && head.[0] >= 'A' && head.[0] <= 'Z' then begin
        add_ref acc head (line_of loc);
        match sink_of_module_path parts with
        | Some s -> acc.sinks <- (s, line_of loc) :: acc.sinks
        | None -> ()
      end
  | [] -> ()

let iterate_structure str =
  let acc = { refs = []; sinks = []; enters = []; exits = []; magics = []; asserts = [] } in
  let open Ast_iterator in
  let expr sub e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        value_path acc txt loc;
        match Longident.flatten txt with
        | [ "Obj"; "magic" ] -> acc.magics <- line_of loc :: acc.magics
        | _ -> ())
    | Pexp_construct ({ txt; loc }, _) -> (
        value_path acc txt loc;
        match Longident.last txt with
        | "Gate_enter" -> acc.enters <- line_of loc :: acc.enters
        | "Gate_exit" -> acc.exits <- line_of loc :: acc.exits
        | _ -> ())
    | Pexp_field (_, { txt; loc }) | Pexp_setfield (_, { txt; loc }, _) -> value_path acc txt loc
    | Pexp_record (fields, _) ->
        List.iter (fun ({ txt; loc }, _) -> value_path acc txt loc) fields
    | Pexp_new { txt; loc } -> value_path acc txt loc
    | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
      ->
        acc.asserts <- line_of e.pexp_loc :: acc.asserts
    | _ -> ());
    default_iterator.expr sub e
  in
  let pat sub p =
    (match p.ppat_desc with
    | Ppat_construct ({ txt; loc }, _) -> value_path acc txt loc
    | Ppat_record (fields, _) ->
        List.iter (fun ({ txt; loc }, _) -> value_path acc txt loc) fields
    | _ -> ());
    default_iterator.pat sub p
  in
  let typ sub t =
    (match t.ptyp_desc with
    | Ptyp_constr ({ txt; loc }, _) | Ptyp_class ({ txt; loc }, _) -> value_path acc txt loc
    | _ -> ());
    default_iterator.typ sub t
  in
  let module_expr sub m =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> module_path acc txt loc
    | _ -> ());
    default_iterator.module_expr sub m
  in
  let iter = { default_iterator with expr; pat; typ; module_expr } in
  iter.structure iter str;
  acc

(* ------------------------------------------------------------------ *)
(* Toplevel mutable-state inventory                                    *)
(* ------------------------------------------------------------------ *)

(* Record types declared in this file that carry a [mutable] field,
   as (label set, all labels) — a toplevel literal is matched against
   these by label inclusion, which needs no type checker. *)
let record_types_of str =
  let out = ref [] in
  let rec item si =
    match si.pstr_desc with
    | Pstr_type (_, decls) ->
        List.iter
          (fun d ->
            match d.ptype_kind with
            | Ptype_record labels ->
                let names = List.map (fun l -> l.pld_name.Location.txt) labels in
                let has_mutable =
                  List.exists (fun l -> l.pld_mutable = Asttypes.Mutable) labels
                in
                out := (names, has_mutable) :: !out
            | _ -> ())
          decls
    | Pstr_module { pmb_expr; _ } -> module_expr pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> module_expr mb.pmb_expr) mbs
    | _ -> ()
  and module_expr me =
    match me.pmod_desc with
    | Pmod_structure s -> List.iter item s
    | Pmod_constraint (me, _) -> module_expr me
    | _ -> ()
  in
  List.iter item str;
  !out

(* Does this record literal inevitably build a mutable record?  True
   when every locally-declared record type its labels fit has a
   [mutable] field. *)
let literal_is_mutable record_types fields =
  let labels = List.map (fun ({ Location.txt; _ }, _) -> Longident.last txt) fields in
  let candidates =
    List.filter (fun (names, _) -> List.for_all (fun l -> List.mem l names) labels) record_types
  in
  candidates <> [] && List.for_all snd candidates

(* What (syntactically) makes a binding's right-hand side shared
   mutable state.  Descends through scaffolding but never into
   functions — a closure allocating a [ref] per call is fine.
   [Atomic.make] is deliberately absent: atomics are the sanctioned
   domain-safe form for module-level counters. *)
let creators =
  [
    ("Hashtbl", "create");
    ("Queue", "create");
    ("Stack", "create");
    ("Buffer", "create");
    ("Bytes", "create");
    ("Bytes", "make");
    ("Bytes", "of_string");
    ("Array", "make");
    ("Array", "init");
    ("Array", "create_float");
    ("Array", "make_matrix");
    ("Weak", "create");
    (* Bigarrays (the PTE arena, bench buffers): created through the
       per-dimension submodules, matched on the last two path
       components so both [Bigarray.Array1.create] and a post-[open]
       [Array1.create] are caught. *)
    ("Array1", "create");
    ("Array2", "create");
    ("Array3", "create");
    ("Genarray", "create");
  ]

let rec mutable_kind record_types e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> None
  | Pexp_newtype (_, e) | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) ->
      mutable_kind record_types e
  | Pexp_let (_, _, body) | Pexp_sequence (_, body) | Pexp_open (_, body) ->
      mutable_kind record_types body
  | Pexp_ifthenelse (_, t, f) -> (
      match mutable_kind record_types t with
      | Some k -> Some k
      | None -> Option.bind f (mutable_kind record_types))
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match List.rev (Longident.flatten txt) with
      | "ref" :: rest when rest = [] || rest = [ "Stdlib" ] -> Some "ref"
      | fn :: m :: _ when List.mem (m, fn) creators -> Some (m ^ "." ^ fn)
      | _ -> None)
  | Pexp_record (fields, None) ->
      if literal_is_mutable record_types fields then Some "mutable record" else None
  | Pexp_array (_ :: _) -> Some "array literal"
  | Pexp_tuple es -> List.find_map (mutable_kind record_types) es
  | Pexp_construct (_, Some e) | Pexp_lazy e -> mutable_kind record_types e
  | _ -> None

let binding_name vb =
  let rec of_pat p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> of_pat p
    | _ -> None
  in
  of_pat vb.pvb_pat

let annotation_reason name vb =
  List.find_map
    (fun attr ->
      if attr.attr_name.Location.txt <> name then None
      else
        match attr.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ]
          when String.trim s <> "" ->
            Some (Ok s)
        | _ -> Some (Error ()))
    vb.pvb_attributes

let single_domain_reason vb = annotation_reason "single_domain" vb

let toplevel_inventory str =
  let record_types = record_types_of str in
  let mutables = ref [] and undocumented = ref [] and annots = ref [] in
  let rec item si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match binding_name vb with
            | None -> ()
            | Some name -> (
                let line = line_of vb.pvb_loc in
                match single_domain_reason vb with
                | Some reason ->
                    (* The annotation suppresses the domain-safety rule
                       whether or not its reason parses, but only a
                       binding that is actually mutable justifies it. *)
                    let suppresses = mutable_kind record_types vb.pvb_expr <> None in
                    annots := (name, line, suppresses) :: !annots;
                    if reason = Error () then undocumented := (name, line) :: !undocumented
                | None -> (
                    match mutable_kind record_types vb.pvb_expr with
                    | Some kind ->
                        mutables := { tm_name = name; tm_kind = kind; tm_line = line } :: !mutables
                    | None -> ())))
          vbs
    | Pstr_module { pmb_expr; _ } -> module_expr pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> module_expr mb.pmb_expr) mbs
    | _ -> ()
  and module_expr me =
    match me.pmod_desc with
    | Pmod_structure s -> List.iter item s
    | Pmod_constraint (me, _) -> module_expr me
    | _ -> ()
  in
  List.iter item str;
  (List.rev !mutables, List.rev !undocumented, List.rev !annots)

(* ------------------------------------------------------------------ *)

let extract (str : Parsetree.structure) : t =
  let acc = iterate_structure str in
  let toplevel_mutables, undocumented_annots, single_domain_annots = toplevel_inventory str in
  {
    module_refs = List.rev acc.refs;
    sink_refs = List.rev acc.sinks;
    toplevel_mutables;
    undocumented_annots;
    single_domain_annots;
    gate_enters = List.rev acc.enters;
    gate_exits = List.rev acc.exits;
    obj_magics = List.rev acc.magics;
    assert_falses = List.rev acc.asserts;
  }
