(** Per-file fact extraction over the compiler-libs AST: everything the
    rule families consume, collected in one iterator pass plus a
    shallow toplevel walk. *)

type toplevel_mutable = {
  tm_name : string;  (** the binding's name *)
  tm_kind : string;  (** what made it mutable, e.g. ["ref"] *)
  tm_line : int;
}

type t = {
  module_refs : (string * int) list;
      (** head module of every dotted path, with the first line it
          appears on — deduplicated per head *)
  sink_refs : (string * int) list;  (** raw-memory write sinks, every occurrence *)
  toplevel_mutables : toplevel_mutable list;
  undocumented_annots : (string * int) list;
      (** [@@single_domain] without a reason string *)
  gate_enters : int list;  (** lines constructing [Probe.Gate_enter] *)
  gate_exits : int list;
  obj_magics : int list;
  assert_falses : int list;
}

val write_sinks : string list
(** The [Phys_mem] mutators only the TCB may reach. *)

val extract : Parsetree.structure -> t
