(** Per-file fact extraction over the compiler-libs AST: everything the
    rule families consume, collected in one iterator pass plus a
    shallow toplevel walk. *)

type toplevel_mutable = {
  tm_name : string;  (** the binding's name *)
  tm_kind : string;  (** what made it mutable, e.g. ["ref"] *)
  tm_line : int;
}

type t = {
  module_refs : (string * int) list;
      (** head module of every dotted path, with the first line it
          appears on — deduplicated per head *)
  sink_refs : (string * int) list;  (** raw-memory write sinks, every occurrence *)
  toplevel_mutables : toplevel_mutable list;
  undocumented_annots : (string * int) list;
      (** [@@single_domain] without a reason string *)
  single_domain_annots : (string * int * bool) list;
      (** every toplevel [@@single_domain] annotation as
          (binding, line, suppresses): [suppresses] is true when the
          binding really is module-toplevel mutable state, i.e. the
          annotation earns its keep; a [false] entry is stale. *)
  gate_enters : int list;  (** lines constructing [Probe.Gate_enter] *)
  gate_exits : int list;
  obj_magics : int list;
  assert_falses : int list;
}

val write_sinks : string list
(** The [Phys_mem] mutators only the TCB may reach. *)

val extract : Parsetree.structure -> t

(** {2 Shared AST helpers}

    Also used by the interprocedural {!Escape} analysis, which
    classifies local [let] bindings with the same mutability test the
    toplevel inventory uses. *)

val line_of : Location.t -> int

val record_types_of : Parsetree.structure -> (string list * bool) list
(** Record types declared in a file, as (labels, has-mutable-field). *)

val mutable_kind :
  (string list * bool) list -> Parsetree.expression -> string option
(** Does this right-hand side (syntactically) build shared mutable
    state — a [ref], [Hashtbl.t], [Bytes.t], array, [Bigarray], mutable
    record literal...?  Descends through scaffolding but never into
    functions; [Atomic.make] is deliberately not mutable (atomics are
    the sanctioned domain-safe form). *)

val binding_name : Parsetree.value_binding -> string option

val annotation_reason :
  string -> Parsetree.value_binding -> (string, unit) result option
(** [annotation_reason name vb] is [None] when [vb] has no [@@name]
    attribute, [Some (Ok reason)] when it carries a non-empty reason
    string, and [Some (Error ())] when the payload is missing or
    empty. *)
