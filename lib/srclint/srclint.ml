(* Self-hosted source auditor.

   Statically scans the repo's *own* OCaml sources (every lib/**/*.ml,
   parsed with compiler-libs) and enforces what the runtime checkers
   cannot: that raw physical-memory mutation stays inside the TCB
   allowlist (the CKI security argument), that the inter-library
   layering DAG has no upward or cross edges, that module-toplevel
   mutable state — the race hazards blocking the domain-sharding
   engine overhaul — is inventoried or fixed, and a hygiene family
   (missing .mli, Obj.magic / assert false in TCB files, unpaired
   Gate_enter/Gate_exit probe emissions).

   `cki_demo lint-src` drives this with a checked-in baseline of
   accepted exceptions; `bench/main.exe srclint --json` tracks scan
   time and finding counts in BENCH_srclint.json. *)

module Source = Source
module Facts = Facts
module Escape = Escape
module Rules = Rules
module Baseline = Baseline

type stats = {
  files : int;
  loc : int;
  libraries : int;
  wall_ms : float;
  by_rule : (string * int) list;  (** finding count per rule, all rules that fired *)
}

type scan = { tree : Source.tree; findings : Rules.finding list; stats : stats }

let count_by_rule findings =
  List.fold_left
    (fun acc (f : Rules.finding) ->
      let n = Option.value ~default:0 (List.assoc_opt f.Rules.rule acc) in
      (f.Rules.rule, n + 1) :: List.remove_assoc f.Rules.rule acc)
    [] findings
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let scan ?arch ?tcb ~root () =
  let t0 = Sys.time () in
  let tree = Source.load_tree ~root in
  let findings = Rules.evaluate ?arch ?tcb tree in
  let wall_ms = (Sys.time () -. t0) *. 1000.0 in
  {
    tree;
    findings;
    stats =
      {
        files = List.length tree.Source.files;
        loc = List.fold_left (fun n (f : Source.file) -> n + f.Source.loc) 0 tree.Source.files;
        libraries = List.length tree.Source.libs;
        wall_ms;
        by_rule = count_by_rule findings;
      };
  }

let find_root = Source.find_root
let find_root_exn = Source.find_root_exn

type check = {
  fresh : Rules.finding list;  (** must fail the run *)
  baselined : Rules.finding list;
  stale : Baseline.entry list;  (** baseline lines that matched nothing *)
}

let check ~baseline findings =
  let baselined, fresh, stale = Baseline.apply baseline findings in
  { fresh; baselined; stale }

let to_findings fs =
  List.map
    (fun (f : Rules.finding) ->
      Report.Findings.make ~severity:f.Rules.severity ~rule:f.Rules.rule
        ~subject:(Printf.sprintf "%s:%d" f.Rules.file f.Rules.line)
        ~detail:f.Rules.detail)
    fs

let pp_stats fmt (s : stats) =
  Format.fprintf fmt "scanned %d files / %d LoC across %d libraries in %.0f ms" s.files s.loc
    s.libraries s.wall_ms
