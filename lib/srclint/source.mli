(** Source-tree model: repo-root discovery, dune-library enumeration
    and compiler-libs parsing of every implementation file under
    [lib/], plus the executable scopes [bin/] and [bench/]. *)

type lib = {
  lib_name : string;  (** dune library name, e.g. ["kernel_model"] *)
  lib_dir : string;  (** repo-relative, e.g. ["lib/kernel"] *)
  lib_module : string;  (** wrapped root module, e.g. ["Kernel_model"];
                            [""] for executable scope *)
  lib_deps : string list;  (** the dune [(libraries ...)] field, verbatim *)
  lib_dune : string;  (** repo-relative path of the dune file *)
  lib_exe : bool;
      (** executable scope ([bin/], [bench/]): a pseudo-library carrying
          the dune [(executable ...)] stanzas of one directory, scanned
          for the layering/escape rule families only *)
}

type file = {
  path : string;  (** repo-relative, forward slashes *)
  library : lib;
  loc : int;  (** physical source lines *)
  has_mli : bool;
  ast : Parsetree.structure;  (** empty when the parse failed *)
  parse_error : (int * string) option;  (** line, message *)
}

type tree = { root : string; libs : lib list; files : file list }

val find_root : ?from:string -> unit -> string option
(** Walk up from [from] (default: the current directory) to the first
    directory holding both [dune-project] and [lib/].  Works from a
    checkout root and from inside dune's [_build/default] copy. *)

val find_root_exn : ?from:string -> unit -> string

val load_tree : root:string -> tree
(** Enumerate every [(library ...)] under [root]/lib — plus the
    [bin/] and [bench/] executable scopes as pseudo-libraries — and
    parse each of their [.ml] files.  Parse failures are captured
    per-file, not raised. *)
