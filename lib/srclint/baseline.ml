(* The checked-in list of accepted findings.

   One fingerprint per line — `<rule> <file> <symbol>`, `#` comments —
   matching [Rules.fingerprint].  A baseline line covers every
   occurrence of that (rule, file, symbol) triple, so a file with two
   accepted calls to the same sink needs one entry, and line-number
   churn never invalidates it.  Entries that no longer match anything
   are reported as stale so the file shrinks as debt is paid down. *)

type entry = { rule : string; file : string; symbol : string }

let fingerprint_of_entry e = Printf.sprintf "%s %s %s" e.rule e.file e.symbol

let parse_line line =
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [] -> Ok None
  | [ rule; file; symbol ] -> Ok (Some { rule; file; symbol })
  | _ -> Error "expected `<rule> <file> <symbol>`"

let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go n acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | line -> (
              match parse_line line with
              | Ok None -> go (n + 1) acc
              | Ok (Some e) -> go (n + 1) (e :: acc)
              | Error msg -> Error (Printf.sprintf "%s:%d: %s" path n msg))
        in
        go 1 [])
  end

let matches entry (f : Rules.finding) =
  entry.rule = f.Rules.rule && entry.file = f.Rules.file && entry.symbol = f.Rules.symbol

(* Split [findings] into (accepted-by-baseline, fresh); also return the
   baseline entries that matched nothing (stale). *)
let apply entries findings =
  let used = Hashtbl.create 16 in
  let baselined, fresh =
    List.partition
      (fun f ->
        match List.find_opt (fun e -> matches e f) entries with
        | Some e ->
            Hashtbl.replace used (fingerprint_of_entry e) ();
            true
        | None -> false)
      findings
  in
  let stale =
    List.filter (fun e -> not (Hashtbl.mem used (fingerprint_of_entry e))) entries
  in
  (baselined, fresh, stale)

let save path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        "# srclint baseline: accepted findings, one `<rule> <file> <symbol>` per line.\n\
         # Regenerate with `cki_demo lint-src --write-baseline`; shrink it, don't grow it.\n";
      let seen = Hashtbl.create 16 in
      List.iter
        (fun f ->
          let fp = Rules.fingerprint f in
          if not (Hashtbl.mem seen fp) then begin
            Hashtbl.add seen fp ();
            output_string oc (fp ^ "\n")
          end)
        findings)
