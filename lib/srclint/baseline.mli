(** The checked-in list of accepted findings: one
    [<rule> <file> <symbol>] fingerprint per line, [#] comments.  A
    line covers every occurrence of its triple and survives
    line-number churn. *)

type entry = { rule : string; file : string; symbol : string }

val fingerprint_of_entry : entry -> string

val load : string -> (entry list, string) result
(** A missing file is an empty baseline; a malformed line is an
    [Error] with position. *)

val apply : entry list -> Rules.finding list -> Rules.finding list * Rules.finding list * entry list
(** [apply entries findings] is [(baselined, fresh, stale)]: findings
    accepted by the baseline, findings that must fail the run, and
    baseline entries that matched nothing. *)

val save : string -> Rules.finding list -> unit
(** Write a baseline accepting exactly [findings] (deduplicated). *)
