(** The four rule families over a parsed source tree: trusted-sink,
    layering, domain-safety, hygiene. *)

type finding = {
  rule : string;
  severity : Report.Findings.severity;
  file : string;  (** repo-relative; a .ml or a dune file *)
  line : int;
  symbol : string;  (** the fingerprint identifier (binding, sink, library...) *)
  detail : string;
}

val fingerprint : finding -> string
(** ["rule file symbol"] — line-free, so edits don't churn baselines. *)

type arch = (string * string list) list
(** [lib -> libraries it may reference]: the sanctioned layering DAG as
    an explicit allowlist. *)

val default_arch : arch
(** This repo's architecture:
    [hw <- kernel_model <- virt <- cki <- {analysis, snapshot,
    modelcheck, ioplane, workloads}], with [report] and [srclint] on
    the side. *)

val default_tcb : string list
(** Files allowed to reach the raw physical-memory write sinks.
    Entries ending in ['/'] cover a directory. *)

val in_tcb : string list -> string -> bool

val evaluate : ?arch:arch -> ?tcb:string list -> Source.tree -> finding list
(** Run every rule family; findings come back ordered by file and
    line, deduplicated per (rule, file, symbol, line). *)
