(** Self-hosted source auditor: a static-analysis pass over the repo's
    own OCaml sources enforcing TCB write-sink containment, the
    inter-library layering DAG, a domain-safety (race) inventory of
    module-toplevel mutable state, the interprocedural domain-escape
    rule (which mutable values leak into [Domain.spawn] closures), and
    source hygiene.

    {!Source} models the tree (dune libraries, the [bin/]/[bench/]
    executable scopes, and compiler-libs ASTs); {!Facts} extracts
    per-file facts; {!Escape} runs the tree-wide sharing analysis;
    {!Rules} evaluates the rule families; {!Baseline} matches findings
    against the checked-in list of accepted exceptions. *)

module Source = Source
module Facts = Facts
module Escape = Escape
module Rules = Rules
module Baseline = Baseline

type stats = {
  files : int;
  loc : int;
  libraries : int;
  wall_ms : float;
  by_rule : (string * int) list;  (** finding count per rule, all rules that fired *)
}

type scan = { tree : Source.tree; findings : Rules.finding list; stats : stats }

val scan : ?arch:Rules.arch -> ?tcb:string list -> root:string -> unit -> scan
(** Parse and audit every [lib/**/*.ml] — plus [bin/*.ml] and
    [bench/*.ml] for the layering and escape families — under
    [root]. *)

val find_root : ?from:string -> unit -> string option
val find_root_exn : ?from:string -> unit -> string

type check = {
  fresh : Rules.finding list;  (** must fail the run *)
  baselined : Rules.finding list;
  stale : Baseline.entry list;  (** baseline lines that matched nothing *)
}

val check : baseline:Baseline.entry list -> Rules.finding list -> check

val to_findings : Rules.finding list -> Report.Findings.t list
(** Render-ready form, subject = [file:line]. *)

val pp_stats : Format.formatter -> stats -> unit
