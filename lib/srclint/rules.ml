(* The four rule families over a parsed source tree.

   Findings carry a stable fingerprint (rule, file, symbol — no line
   numbers, so unrelated edits don't churn the baseline) and render
   through [Report.Findings]. *)

type finding = {
  rule : string;
  severity : Report.Findings.severity;
  file : string;  (** repo-relative; a .ml or a dune file *)
  line : int;
  symbol : string;  (** the fingerprint identifier (binding, sink, library...) *)
  detail : string;
}

let fingerprint f = Printf.sprintf "%s %s %s" f.rule f.file f.symbol

(* ------------------------------------------------------------------ *)
(* Architecture: the sanctioned inter-library DAG                      *)
(* ------------------------------------------------------------------ *)

(* [lib -> libraries it may reference].  This is the layering
   `hw <- kernel <- virt <- core <- {analysis, snapshot, modelcheck,
   ioplane} <- workload drivers` written out as an explicit allowlist;
   an edge absent here is an upward or cross edge and a finding, even
   when OCaml would resolve it through dune's implicit transitive
   dependencies.  A new library must be added here deliberately. *)
type arch = (string * string list) list

let default_arch =
  [
    ("report", []);
    ("hw", []);
    ("kernel_model", [ "hw" ]);
    ("virt", [ "hw"; "kernel_model" ]);
    ("cki", [ "hw"; "kernel_model"; "virt" ]);
    ("workloads", [ "hw"; "kernel_model"; "virt" ]);
    ("analysis", [ "hw"; "cki"; "report" ]);
    ("snapshot", [ "hw"; "kernel_model"; "virt"; "cki"; "analysis"; "report" ]);
    ("modelcheck", [ "hw"; "kernel_model"; "virt"; "cki"; "report" ]);
    ("ioplane", [ "hw"; "kernel_model"; "virt"; "cki"; "workloads"; "report" ]);
    (* The fleet controller composes the serving plane: it may see the
       I/O plane, snapshots and the verifier, and nothing may see it. *)
    ("fleet",
      [ "hw"; "kernel_model"; "virt"; "cki"; "workloads"; "ioplane"; "snapshot"; "analysis"; "report" ]);
    (* Live migration sits above the whole serving stack: it moves
       containers between fabric hosts over snapshot images and
       re-verifies them with the analysis scanner before cutover.
       Only the executables may see it. *)
    ("migrate",
      [ "hw"; "kernel_model"; "virt"; "cki"; "ioplane"; "snapshot"; "fleet"; "analysis"; "report" ]);
    ("srclint", [ "report" ]);
    (* Executable scope: the demo driver and the bench harness sit on
       top of the whole stack — any library, no library sees them. *)
    ( "bin",
      [ "report"; "hw"; "kernel_model"; "virt"; "cki"; "workloads"; "analysis"; "snapshot";
        "modelcheck"; "ioplane"; "fleet"; "migrate"; "srclint" ] );
    ( "bench",
      [ "report"; "hw"; "kernel_model"; "virt"; "cki"; "workloads"; "analysis"; "snapshot";
        "modelcheck"; "ioplane"; "fleet"; "migrate"; "srclint" ] );
  ]

(* ------------------------------------------------------------------ *)
(* Trusted computing base                                              *)
(* ------------------------------------------------------------------ *)

(* Files allowed to reach the raw physical-memory write sinks: the
   hardware model itself, the security monitor (KSM) and its per-vCPU
   root copies, the snapshot restore/freeze paths, and the VirtIO data
   path (guest-word access + ring layout).  Everything else must
   mutate memory through a KSM call.  Entries ending in '/' cover a
   directory. *)
let default_tcb =
  [
    "lib/hw/";
    "lib/core/ksm.ml";
    "lib/core/pervcpu.ml";
    "lib/snapshot/restore.ml";
    "lib/snapshot/template.ml";
    "lib/kernel/platform.ml";
    "lib/kernel/virtio.ml";
  ]

let in_tcb tcb path =
  List.exists
    (fun entry ->
      if String.length entry > 0 && entry.[String.length entry - 1] = '/' then
        String.length path >= String.length entry && String.sub path 0 (String.length entry) = entry
      else path = entry)
    tcb

(* ------------------------------------------------------------------ *)
(* Rule evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let crit = Report.Findings.Critical
let warn = Report.Findings.Warning

let mk rule severity file line symbol detail = { rule; severity; file; line; symbol; detail }

let evaluate ?(arch = default_arch) ?(tcb = default_tcb) (tree : Source.tree) : finding list =
  let out = ref [] in
  let emit f = out := f :: !out in
  let lib_of_module m =
    List.find_opt (fun (l : Source.lib) -> l.lib_module = m) tree.Source.libs
  in
  let repo_lib_names = List.map (fun (l : Source.lib) -> l.Source.lib_name) tree.Source.libs in
  (* Per-library checks: the dune file itself must not declare an edge
     the architecture forbids, and every library must be in the table. *)
  List.iter
    (fun (lib : Source.lib) ->
      match List.assoc_opt lib.Source.lib_name arch with
      | None ->
          emit
            (mk "layering" crit lib.Source.lib_dune 1 lib.Source.lib_name
               (Printf.sprintf
                  "library %S is not in the architecture table; add it (and its allowed \
                   dependencies) to the layering DAG deliberately"
                  lib.Source.lib_name))
      | Some allowed ->
          List.iter
            (fun dep ->
              if List.mem dep repo_lib_names && not (List.mem dep allowed) then
                emit
                  (mk "layering" crit lib.Source.lib_dune 1 dep
                     (Printf.sprintf
                        "dune declares dependency %s -> %s, an upward or cross edge the \
                         layering DAG forbids"
                        lib.Source.lib_name dep)))
            lib.Source.lib_deps)
    tree.Source.libs;
  (* Per-file checks. *)
  List.iter
    (fun (file : Source.file) ->
      let path = file.Source.path in
      let lib = file.Source.library in
      let tcb_file = in_tcb tcb path in
      (match file.Source.parse_error with
      | Some (line, msg) ->
          emit
            (mk "parse-error" crit path line (Filename.basename path)
               ("compiler front end rejected this file: " ^ msg))
      | None -> ());
      let facts = Facts.extract file.Source.ast in
      (* Executable scope ([bin/], [bench/]) gets the layering family
         (parse-error, layering, undeclared-dep) plus the tree-wide
         escape analysis below; the lib-only families — trusted-sink,
         domain-safety, hygiene — stay scoped to lib/ code. *)
      let exe = lib.Source.lib_exe in
      (* (1) trusted-sink *)
      if (not tcb_file) && not exe then
        List.iter
          (fun (sink, line) ->
            emit
              (mk "trusted-sink" crit path line sink
                 (Printf.sprintf
                    "raw physical-memory mutation outside the TCB allowlist; route this \
                     through a KSM call or add the file to the allowlist deliberately")))
          facts.Facts.sink_refs;
      (* (2) layering: module references vs the DAG and the dune file *)
      let allowed = Option.value ~default:[] (List.assoc_opt lib.Source.lib_name arch) in
      List.iter
        (fun (head, line) ->
          match lib_of_module head with
          | None -> () (* stdlib / compiler-libs / external *)
          | Some target when target.Source.lib_name = lib.Source.lib_name -> ()
          | Some target ->
              let tname = target.Source.lib_name in
              if not (List.mem tname allowed) then
                emit
                  (mk "layering" crit path line tname
                     (Printf.sprintf
                        "reference to library %s from %s is an upward or cross edge \
                         (allowed dependencies: %s)"
                        tname lib.Source.lib_name
                        (match allowed with [] -> "none" | l -> String.concat ", " l)))
              else if not (List.mem tname lib.Source.lib_deps) then
                emit
                  (mk "undeclared-dep" warn path line tname
                     (Printf.sprintf
                        "reference to library %s resolves only through dune's implicit \
                         transitive dependencies; declare it in %s"
                        tname lib.Source.lib_dune)))
        facts.Facts.module_refs;
      (* (3) domain-safety *)
      if not exe then begin
        List.iter
          (fun (tm : Facts.toplevel_mutable) ->
            emit
              (mk "domain-safety" warn path tm.Facts.tm_line tm.Facts.tm_name
                 (Printf.sprintf
                    "module-toplevel mutable state (%s) is a race hazard for domain \
                     sharding; thread it through machine/host state, use Atomic.t, or \
                     document it with [@@single_domain \"reason\"]"
                    tm.Facts.tm_kind)))
          facts.Facts.toplevel_mutables;
        List.iter
          (fun (name, line) ->
            emit
              (mk "undocumented-annotation" warn path line name
                 "[@@single_domain] carries no reason string; say why single-domain use \
                  is sound"))
          facts.Facts.undocumented_annots;
        List.iter
          (fun (name, line, suppresses) ->
            if not suppresses then
              emit
                (mk "stale-annotation" warn path line name
                   "[@@single_domain] on a binding that is not module-toplevel mutable \
                    state; the annotation suppresses nothing — remove it"))
          facts.Facts.single_domain_annots
      end;
      (* (4) hygiene *)
      if (not file.Source.has_mli) && not exe then
        emit
          (mk "missing-mli" warn path 1 (Filename.basename path)
             "no interface file; every lib/ module must state its API in a .mli");
      if tcb_file then begin
        List.iter
          (fun line ->
            emit
              (mk "tcb-unsafe" warn path line "Obj.magic"
                 "Obj.magic inside a TCB file defeats the type system where it matters most"))
          facts.Facts.obj_magics;
        List.iter
          (fun line ->
            emit
              (mk "tcb-unsafe" warn path line "assert-false"
                 "assert false inside a TCB file; make the impossible case a typed error"))
          facts.Facts.assert_falses
      end;
      let n_enter = List.length facts.Facts.gate_enters
      and n_exit = List.length facts.Facts.gate_exits in
      if n_enter <> n_exit && not exe then
        emit
          (mk "probe-pairing" warn path
             (match (facts.Facts.gate_enters, facts.Facts.gate_exits) with
             | l :: _, _ | [], l :: _ -> l
             | [], [] -> 1)
             "Gate_enter/Gate_exit"
             (Printf.sprintf
                "file constructs %d Gate_enter but %d Gate_exit probe events; every gate \
                 entry emission needs a matching exit emission"
                n_enter n_exit)))
    tree.Source.files;
  (* (5) domain-escape: the tree-wide interprocedural sharing analysis,
     plus the [@@domain_shared] annotation ledger it maintains. *)
  let esc = Escape.analyze tree in
  List.iter
    (fun (e : Escape.escape) ->
      emit
        (mk "domain-escape" crit e.Escape.e_file e.Escape.e_line e.Escape.e_name
           (Printf.sprintf
              "mutable value %s (%s, defined at %s:%d) is reachable from this \
               Domain.spawn closure%s and escapes its spawning domain; make it Atomic, \
               guard every closure use with Mutex.protect, thread it through per-lane \
               state, or bless the sharing with [@@domain_shared \"reason\"]"
              e.Escape.e_name e.Escape.e_kind e.Escape.e_def_file e.Escape.e_def_line
              (match e.Escape.e_via with Some v -> " via " ^ v | None -> ""))))
    esc.Escape.escapes;
  List.iter
    (fun (a : Escape.shared_annot) ->
      if not a.Escape.s_used then
        emit
          (mk "stale-annotation" warn a.Escape.s_file a.Escape.s_line a.Escape.s_name
             "[@@domain_shared] never sanctions a spawn capture of this binding; the \
              annotation is stale — remove it");
      if a.Escape.s_reason = Error () then
        emit
          (mk "undocumented-annotation" warn a.Escape.s_file a.Escape.s_line a.Escape.s_name
             "[@@domain_shared] carries no reason string; say why cross-domain sharing \
              of this value is sound"))
    esc.Escape.shared_annots;
  (* Deduplicate identical (rule, file, symbol, line) — e.g. a module
     referenced from several syntactic positions on one line — then
     order by file and line for stable output. *)
  let seen = Hashtbl.create 64 in
  !out
  |> List.filter (fun f ->
         let key = (f.rule, f.file, f.symbol, f.line) in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.add seen key ();
           true
         end)
  |> List.sort (fun a b ->
         match String.compare a.file b.file with
         | 0 -> ( match compare a.line b.line with 0 -> String.compare a.rule b.rule | c -> c)
         | c -> c)
