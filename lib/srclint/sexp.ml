(* A minimal s-expression reader, just enough for dune files.

   Handles atoms, double-quoted strings (with the usual backslash
   escapes left undecoded — dune library stanzas never need them),
   nested lists and `;` line comments.  No external dependency, so the
   auditor stays self-contained instead of shelling out to
   `dune describe`. *)

type t = Atom of string | List of t list

exception Parse_error of string

let parse_string (src : string) : t list =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_blank () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_blank ()
    | Some ';' ->
        while !pos < n && src.[!pos] <> '\n' do
          advance ()
        done;
        skip_blank ()
    | _ -> ()
  in
  let read_string () =
    advance ();
    (* opening quote *)
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Parse_error "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
          Buffer.add_char buf '\\';
          advance ();
          (match peek () with
          | Some c ->
              Buffer.add_char buf c;
              advance ()
          | None -> raise (Parse_error "unterminated escape"));
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let read_atom () =
    let start = !pos in
    let stop = ref false in
    while (not !stop) && !pos < n do
      match src.[!pos] with
      | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"' -> stop := true
      | _ -> advance ()
    done;
    String.sub src start (!pos - start)
  in
  let rec read_sexp () =
    skip_blank ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
        advance ();
        let items = ref [] in
        let rec items_loop () =
          skip_blank ();
          match peek () with
          | Some ')' -> advance ()
          | None -> raise (Parse_error "unterminated list")
          | Some _ ->
              items := read_sexp () :: !items;
              items_loop ()
        in
        items_loop ();
        List (List.rev !items)
    | Some ')' -> raise (Parse_error "unbalanced ')'")
    | Some '"' -> Atom (read_string ())
    | Some _ -> Atom (read_atom ())
  in
  let out = ref [] in
  skip_blank ();
  while !pos < n do
    out := read_sexp () :: !out;
    skip_blank ()
  done;
  List.rev !out

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))
