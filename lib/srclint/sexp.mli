(** A minimal s-expression reader, just enough for dune files (atoms,
    quoted strings, nested lists, [;] line comments). *)

type t = Atom of string | List of t list

exception Parse_error of string

val parse_string : string -> t list
(** All toplevel s-expressions in the input.  @raise Parse_error *)

val parse_file : string -> t list
