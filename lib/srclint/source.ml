(* Source-tree model: find the repo root, enumerate the dune libraries
   under lib/, and parse every implementation file with the installed
   compiler's own front end (compiler-libs), so the auditor sees the
   exact AST the build sees — ppx attributes and all (attributes parse
   without running the rewriters; the auditor never typechecks). *)

type lib = {
  lib_name : string;  (** dune library name, e.g. ["kernel_model"] *)
  lib_dir : string;  (** repo-relative, e.g. ["lib/kernel"] *)
  lib_module : string;  (** wrapped root module, e.g. ["Kernel_model"];
                            [""] for executable scope *)
  lib_deps : string list;  (** the dune [(libraries ...)] field, verbatim *)
  lib_dune : string;  (** repo-relative path of the dune file *)
  lib_exe : bool;
      (** executable scope ([bin/], [bench/]): a pseudo-library carrying
          the dune [(executable ...)] stanzas of one directory, scanned
          for the layering/escape rule families only *)
}

type file = {
  path : string;  (** repo-relative, forward slashes *)
  library : lib;
  loc : int;  (** physical source lines *)
  has_mli : bool;
  ast : Parsetree.structure;  (** empty when the parse failed *)
  parse_error : (int * string) option;  (** line, message *)
}

type tree = { root : string; libs : lib list; files : file list }

(* ------------------------------------------------------------------ *)
(* Root discovery                                                      *)
(* ------------------------------------------------------------------ *)

(* Walk up from [from] until a directory holding both [dune-project]
   and a [lib/] subdirectory appears.  Works from a checkout root and
   from inside dune's [_build/default] copy of the tree (which is where
   `dune runtest` executes), since dune copies both markers there. *)
let find_root ?from () =
  let start = match from with Some d -> d | None -> Sys.getcwd () in
  let is_root dir =
    Sys.file_exists (Filename.concat dir "dune-project")
    && (try Sys.is_directory (Filename.concat dir "lib") with Sys_error _ -> false)
  in
  let rec go dir =
    if is_root dir then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else go parent
  in
  go start

let find_root_exn ?from () =
  match find_root ?from () with
  | Some r -> r
  | None -> failwith "srclint: no repo root (dune-project + lib/) above the current directory"

(* ------------------------------------------------------------------ *)
(* Dune-file interpretation                                            *)
(* ------------------------------------------------------------------ *)

let atom_of = function Sexp.Atom a -> Some a | Sexp.List _ -> None

(* Pull [(name X)] and [(libraries ...)] out of a [(library ...)]
   stanza; non-library stanzas (rules, tests) yield nothing. *)
let library_of_stanza = function
  | Sexp.List (Sexp.Atom "library" :: fields) ->
      let name = ref None and deps = ref [] in
      List.iter
        (function
          | Sexp.List (Sexp.Atom "name" :: Sexp.Atom n :: _) -> name := Some n
          | Sexp.List (Sexp.Atom "libraries" :: ds) ->
              deps := List.filter_map atom_of ds
          | _ -> ())
        fields;
      Option.map (fun n -> (n, !deps)) !name
  | _ -> None

(* Pull the [(libraries ...)] out of an [(executable ...)] /
   [(executables ...)] stanza. *)
let executable_libraries_of_stanza = function
  | Sexp.List (Sexp.Atom ("executable" | "executables") :: fields) ->
      let deps = ref None in
      List.iter
        (function
          | Sexp.List (Sexp.Atom "libraries" :: ds) ->
              deps := Some (List.filter_map atom_of ds)
          | _ -> ())
        fields;
      Some (Option.value ~default:[] !deps)
  | _ -> None

let module_of_lib_name name = String.capitalize_ascii name

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let count_lines content =
  let lines = ref 0 in
  String.iter (fun c -> if c = '\n' then incr lines) content;
  if String.length content > 0 && content.[String.length content - 1] <> '\n' then incr lines;
  !lines

let parse_impl ~path content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf path;
  try Ok (Parse.implementation lexbuf)
  with exn ->
    let line =
      match exn with
      | Syntaxerr.Error e -> (Syntaxerr.location_of_error e).Location.loc_start.Lexing.pos_lnum
      | _ -> lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum
    in
    Error (line, Printexc.to_string exn)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Tree enumeration                                                    *)
(* ------------------------------------------------------------------ *)

let sorted_dir path = Sys.readdir path |> Array.to_list |> List.sort String.compare

(* Executable directories scanned as pseudo-libraries: parse-error,
   layering and domain-escape apply there too (the demo driver and the
   bench harness reference every library), while the lib-only families
   (missing-mli, domain-safety, TCB hygiene) do not. *)
let exe_dirs = [ "bin"; "bench" ]

let load_tree ~root =
  let libdir = Filename.concat root "lib" in
  let libs =
    sorted_dir libdir
    |> List.filter_map (fun entry ->
           let dir = Filename.concat libdir entry in
           let dune = Filename.concat dir "dune" in
           if (try Sys.is_directory dir with Sys_error _ -> false) && Sys.file_exists dune then
             match List.find_map library_of_stanza (Sexp.parse_file dune) with
             | Some (name, deps) ->
                 Some
                   {
                     lib_name = name;
                     lib_dir = "lib/" ^ entry;
                     lib_module = module_of_lib_name name;
                     lib_deps = deps;
                     lib_dune = "lib/" ^ entry ^ "/dune";
                     lib_exe = false;
                   }
             | None -> None
           else None)
  in
  let exes =
    exe_dirs
    |> List.filter_map (fun entry ->
           let dir = Filename.concat root entry in
           let dune = Filename.concat dir "dune" in
           if (try Sys.is_directory dir with Sys_error _ -> false) && Sys.file_exists dune then
             match List.filter_map executable_libraries_of_stanza (Sexp.parse_file dune) with
             | [] -> None
             | per_stanza ->
                 Some
                   {
                     lib_name = entry;
                     lib_dir = entry;
                     (* No wrapped root module: nothing references an
                        executable, so this must never match a path head. *)
                     lib_module = "";
                     lib_deps = List.concat per_stanza |> List.sort_uniq String.compare;
                     lib_dune = entry ^ "/dune";
                     lib_exe = true;
                   }
           else None)
  in
  let libs = libs @ exes in
  let files =
    List.concat_map
      (fun lib ->
        let dir = Filename.concat root lib.lib_dir in
        sorted_dir dir
        |> List.filter (fun f ->
               (* .pp.ml are ppx-expanded build artifacts, not sources *)
               Filename.check_suffix f ".ml" && not (Filename.check_suffix f ".pp.ml"))
        |> List.map (fun f ->
               let abs = Filename.concat dir f in
               let content = read_file abs in
               let path = lib.lib_dir ^ "/" ^ f in
               let ast, parse_error =
                 match parse_impl ~path content with
                 | Ok ast -> (ast, None)
                 | Error e -> ([], Some e)
               in
               {
                 path;
                 library = lib;
                 loc = count_lines content;
                 has_mli = Sys.file_exists (Filename.concat dir (Filename.chop_suffix f ".ml" ^ ".mli"));
                 ast;
                 parse_error;
               }))
      libs
  in
  { root; libs; files }
