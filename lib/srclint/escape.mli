(** Interprocedural domain-escape analysis: the static half of the
    domain-race sanitizer.

    Finds every [Domain.spawn] site in the scanned tree and computes
    the mutable values — refs, mutable record fields, arrays,
    Bigarrays, hashtables; local [let]s and module-toplevel bindings
    alike — reachable from each spawned closure, following local
    helper functions and calls into toplevel functions of any scanned
    library (def/use + call-graph fixpoint over parsetrees).

    Sanctioned, non-escaping forms: [Atomic.t] (never classified
    mutable), bindings annotated [@@domain_shared "reason"], locals
    whose every direct closure use sits under [Mutex.protect], and a
    local handed wholesale to a single non-replicated spawn (a
    transfer).  [@@single_domain] does {e not} sanction an escape.

    Also maintains the [@@domain_shared] annotation ledger so
    {!Rules} can report stale and undocumented annotations. *)

type escape = {
  e_file : string;  (** file containing the spawn site *)
  e_line : int;  (** line of the [Domain.spawn] application *)
  e_name : string;  (** the escaping binding *)
  e_kind : string;  (** what makes it mutable, e.g. ["ref"] *)
  e_def_file : string;
  e_def_line : int;
  e_via : string option;  (** the call/path the value was reached through *)
}

type shared_annot = {
  s_file : string;
  s_name : string;
  s_line : int;
  s_reason : (string, unit) result;  (** [Error ()]: payload missing or empty *)
  mutable s_used : bool;  (** did the annotation sanction anything? *)
}

type result = { escapes : escape list; shared_annots : shared_annot list }

val analyze : Source.tree -> result
