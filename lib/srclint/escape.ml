(* Interprocedural domain-escape analysis: the static half of the
   domain-race sanitizer.

   Finds every [Domain.spawn] site in the tree and computes which
   mutable values — refs, arrays, Bigarrays, hashtables, mutable
   records, whether local [let]s or module-toplevel bindings in any
   scanned file — are reachable from the spawned closure, following
   local helper functions and calls into toplevel functions of this or
   other libraries (a def/use + call-graph fixpoint over parsetrees;
   no typechecker).  A reachable mutable escapes its spawning domain
   and is reported unless a sanctioned form covers it:

   - [Atomic.t] values are never classified mutable in the first place
     ({!Facts.mutable_kind});
   - a binding annotated [@@domain_shared "reason"] is blessed — the
     author promises the sharing discipline (and the dynamic checker,
     [Analysis.Racecheck], holds them to it);
   - a local binding whose every direct use inside the closure sits
     under [Mutex.protect] is lock-guarded;
   - a local binding handed wholesale to a single, non-replicated
     spawn — its only uses in scope are inside that one closure — is a
     transfer, not sharing.

   A spawn site is *replicated* when it executes more than once per
   evaluation of its scope: inside [for]/[while] bodies or closure
   arguments of [Array]/[List]/[Seq] combinators.  A local mutable
   captured there is shared between sibling domains even if the parent
   never touches it again.  [@@single_domain] does NOT sanction an
   escape: it asserts single-domain use, which a spawn capture
   contradicts.

   The analysis also owns the [@@domain_shared] annotation ledger:
   every annotation in the tree is collected (toplevel and local
   [let]s), ones that never sanctioned anything are reported stale,
   ones without a reason string undocumented — same contract as the
   baseline file.

   Known approximations, all deliberate for a linter: scoping inside a
   closure is name-based (a capture shadowed deep inside the closure is
   dropped — a false negative, never a false positive); toplevel
   bindings inside nested [module] structures are not in the resolver;
   values smuggled through function arguments (e.g. the lane callback
   [Hw.Domain_shard.run] receives) are not tracked — which is exactly
   why the repo keeps ONE blessed spawn site and checks the rest
   dynamically. *)

open Parsetree

type escape = {
  e_file : string;  (** file containing the spawn site *)
  e_line : int;  (** line of the [Domain.spawn] application *)
  e_name : string;  (** the escaping binding *)
  e_kind : string;  (** what makes it mutable, e.g. ["ref"] *)
  e_def_file : string;
  e_def_line : int;
  e_via : string option;  (** the call/path the value was reached through *)
}

type shared_annot = {
  s_file : string;
  s_name : string;
  s_line : int;
  s_reason : (string, unit) result;  (** [Error ()]: payload missing or empty *)
  mutable s_used : bool;  (** did the annotation sanction anything? *)
}

type result = { escapes : escape list; shared_annots : shared_annot list }

let line_of = Facts.line_of

(* ------------------------------------------------------------------ *)
(* Generic AST helpers                                                 *)
(* ------------------------------------------------------------------ *)

(* Immediate sub-expressions of a node, one level down: run the default
   traversal of [e] with an expression hook that collects instead of
   recursing. *)
let sub_exprs e =
  let acc = ref [] in
  let iter =
    { Ast_iterator.default_iterator with expr = (fun _ e -> acc := e :: !acc) }
  in
  Ast_iterator.default_iterator.expr iter e;
  List.rev !acc

(* Every identifier occurrence in a subtree: bare names and dotted
   paths, separately. *)
let idents_of e =
  let bare = ref [] and dotted = ref [] in
  let open Ast_iterator in
  let expr sub ex =
    (match ex.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } -> bare := n :: !bare
    | Pexp_ident { txt; _ } -> (
        match Longident.flatten txt with
        | _ :: _ :: _ as parts -> dotted := parts :: !dotted
        | _ -> ())
    | _ -> ());
    default_iterator.expr sub ex
  in
  let iter = { default_iterator with expr } in
  iter.expr iter e;
  (!bare, !dotted)

(* Every name bound by a pattern in the subtree (fun params, let and
   match patterns). *)
let bound_names e =
  let acc = ref [] in
  let open Ast_iterator in
  let pat sub p =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } -> acc := txt :: !acc
    | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
    | _ -> ());
    default_iterator.pat sub p
  in
  let iter = { default_iterator with pat } in
  iter.expr iter e;
  !acc

(* The closure's free names: identifiers used but not bound anywhere
   inside it.  Name-based, so an inner shadow drops the outer capture —
   a conservative miss. *)
let free_names e =
  let bare, dotted = idents_of e in
  let bound = bound_names e in
  ( List.sort_uniq String.compare (List.filter (fun n -> not (List.mem n bound)) bare),
    List.sort_uniq compare dotted )

let pat_names p =
  let acc = ref [] in
  let open Ast_iterator in
  let pat sub q =
    (match q.ppat_desc with
    | Ppat_var { txt; _ } -> acc := txt :: !acc
    | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
    | _ -> ());
    default_iterator.pat sub q
  in
  let iter = { default_iterator with pat } in
  iter.pat iter p;
  !acc

let count_ident name e =
  let n = ref 0 in
  let open Ast_iterator in
  let expr sub ex =
    (match ex.pexp_desc with
    | Pexp_ident { txt = Longident.Lident m; _ } when m = name -> incr n
    | _ -> ());
    default_iterator.expr sub ex
  in
  let iter = { default_iterator with expr } in
  iter.expr iter e;
  !n

let path_rev fn =
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } -> List.rev (Longident.flatten txt)
  | _ -> []

(* Is every occurrence of [name] inside [e] under a [Mutex.protect]
   argument? *)
let mutex_guarded name e =
  let naked = ref false in
  let is_mutex fn =
    match path_rev fn with "protect" :: "Mutex" :: _ -> true | _ -> false
  in
  let rec scan guarded e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident m; _ } when m = name ->
        if not guarded then naked := true
    | Pexp_apply (fn, args) ->
        let g = guarded || is_mutex fn in
        scan guarded fn;
        List.iter (fun (_, a) -> scan g a) args
    | _ -> List.iter (scan guarded) (sub_exprs e)
  in
  scan false e;
  not !naked

(* ------------------------------------------------------------------ *)
(* Global tables: toplevel bindings of every scanned file              *)
(* ------------------------------------------------------------------ *)

(* Keys are (repo-relative file, binding name). *)
module Key = struct
  type t = string * string

  let compare = compare
end

module KS = Set.Make (Key)

type ginfo =
  | Gmut of { kind : string; line : int; shared : shared_annot option }
      (** toplevel mutable state *)
  | Gfun of expression
      (** any other toplevel binding: a function (or a partial
          application closing over something) whose body contributes
          def/use and call edges *)

let record_annot annots ~file ~name ~line vb =
  match Facts.annotation_reason "domain_shared" vb with
  | None -> None
  | Some reason ->
      let a = { s_file = file; s_name = name; s_line = line; s_reason = reason; s_used = false } in
      annots := a :: !annots;
      Some a

let build_globals annots (tree : Source.tree) =
  let globals : (Key.t, ginfo) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (file : Source.file) ->
      let record_types = Facts.record_types_of file.Source.ast in
      List.iter
        (fun si ->
          match si.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match Facts.binding_name vb with
                  | None -> ()
                  | Some name ->
                      let line = line_of vb.pvb_loc in
                      let shared =
                        record_annot annots ~file:file.Source.path ~name ~line vb
                      in
                      let info =
                        match Facts.mutable_kind record_types vb.pvb_expr with
                        | Some kind -> Gmut { kind; line; shared }
                        | None -> Gfun vb.pvb_expr
                      in
                      Hashtbl.replace globals (file.Source.path, name) info)
                vbs
          | _ -> ())
        file.Source.ast)
    tree.Source.files;
  globals

(* ------------------------------------------------------------------ *)
(* Path resolution                                                     *)
(* ------------------------------------------------------------------ *)

(* Map a dotted path seen in [file] to a (file, name) key: [M.x] is a
   sibling module of the same library or another library's root
   module; [L.M.x] crosses into library [L]'s module [M].  Stdlib and
   external paths resolve to nothing. *)
let resolver (tree : Source.tree) =
  let have = Hashtbl.create 256 in
  List.iter (fun (f : Source.file) -> Hashtbl.replace have f.Source.path ()) tree.Source.files;
  let lib_of_module m =
    List.find_opt
      (fun (l : Source.lib) -> l.Source.lib_module = m && l.Source.lib_module <> "")
      tree.Source.libs
  in
  let file_in dir m = dir ^ "/" ^ String.uncapitalize_ascii m ^ ".ml" in
  fun (file : Source.file) parts ->
    match List.rev parts with
    | name :: mods_rev -> (
        match List.rev mods_rev with
        | [ m ] -> (
            let sibling = file_in file.Source.library.Source.lib_dir m in
            if Hashtbl.mem have sibling then Some (sibling, name)
            else
              match lib_of_module m with
              | Some l ->
                  let rootml = file_in l.Source.lib_dir l.Source.lib_name in
                  if Hashtbl.mem have rootml then Some (rootml, name) else None
              | None -> None)
        | [ l; m ] -> (
            match lib_of_module l with
            | Some l ->
                let target = file_in l.Source.lib_dir m in
                if Hashtbl.mem have target then Some (target, name) else None
            | None -> None)
        | _ -> None)
    | [] -> None

(* ------------------------------------------------------------------ *)
(* Call-graph fixpoint: mutable globals transitively reachable from    *)
(* each toplevel function                                              *)
(* ------------------------------------------------------------------ *)

let build_reach globals resolve (tree : Source.tree) =
  (* Per-function summaries: directly-used mutable globals and called
     globals, with local names kept out by [free_names]. *)
  let summaries : (Key.t, KS.t * Key.t list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (file : Source.file) ->
      Hashtbl.iter
        (fun (path, name) info ->
          match info with
          | Gfun body when path = file.Source.path ->
              let bare, dotted = free_names body in
              let muts = ref KS.empty and calls = ref [] in
              let classify key =
                match Hashtbl.find_opt globals key with
                | Some (Gmut _) -> muts := KS.add key !muts
                | Some (Gfun _) -> calls := key :: !calls
                | None -> ()
              in
              List.iter (fun n -> classify (path, n)) bare;
              List.iter
                (fun parts -> Option.iter classify (resolve file parts))
                dotted;
              Hashtbl.replace summaries (path, name) (!muts, !calls)
          | _ -> ())
        globals)
    tree.Source.files;
  let reach : (Key.t, KS.t) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter (fun k (muts, _) -> Hashtbl.replace reach k muts) summaries;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun k (muts, calls) ->
        let r =
          List.fold_left
            (fun acc c ->
              match Hashtbl.find_opt reach c with
              | Some rc -> KS.union acc rc
              | None -> acc)
            muts calls
        in
        let old = Option.value ~default:KS.empty (Hashtbl.find_opt reach k) in
        if not (KS.subset r old) then begin
          Hashtbl.replace reach k (KS.union old r);
          changed := true
        end)
      summaries
  done;
  fun key -> Option.value ~default:KS.empty (Hashtbl.find_opt reach key)

(* ------------------------------------------------------------------ *)
(* Per-file walk: spawn sites with their lexical environments          *)
(* ------------------------------------------------------------------ *)

type binding =
  | Lmut of { kind : string; line : int; shared : shared_annot option; scope : expression }
  | Lfun of env * expression  (** local function: environment at its definition *)
  | Lopaque  (** parameter or immutable local — nothing to chase *)

and env = (string * binding) list

type site = {
  sp_line : int;
  sp_rep : bool;  (** the spawn executes more than once per scope entry *)
  sp_closure : expression;
  sp_env : env;
}

(* Closure arguments of these heads run their closure many times. *)
let replicating_head fn =
  match path_rev fn with
  | _ :: m :: _ when m = "Array" || m = "List" || m = "Seq" -> true
  | _ -> false

let is_spawn fn = match path_rev fn with [ "spawn"; "Domain" ] -> true | _ -> false

let spawn_sites_of_file annots (file : Source.file) =
  let record_types = Facts.record_types_of file.Source.ast in
  let sites = ref [] in
  let rec walk env rep e =
    match e.pexp_desc with
    | Pexp_let (_, vbs, body) ->
        let classify vb =
          match Facts.binding_name vb with
          | None -> []
          | Some name ->
              let line = line_of vb.pvb_loc in
              let shared = record_annot annots ~file:file.Source.path ~name ~line vb in
              let b =
                match Facts.mutable_kind record_types vb.pvb_expr with
                | Some kind -> Lmut { kind; line; shared; scope = body }
                | None -> (
                    match vb.pvb_expr.pexp_desc with
                    (* Recursive self-references are simply absent from
                       the stored environment, which also breaks
                       expansion cycles. *)
                    | Pexp_fun _ | Pexp_function _ -> Lfun (env, vb.pvb_expr)
                    | _ -> Lopaque)
              in
              [ (name, b) ]
        in
        let news = List.concat_map classify vbs in
        List.iter (fun vb -> walk env rep vb.pvb_expr) vbs;
        walk (news @ env) rep body
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (walk env rep) default;
        walk (List.map (fun n -> (n, Lopaque)) (pat_names pat) @ env) rep body
    | Pexp_function cases ->
        List.iter
          (fun c ->
            let env = List.map (fun n -> (n, Lopaque)) (pat_names c.pc_lhs) @ env in
            Option.iter (walk env rep) c.pc_guard;
            walk env rep c.pc_rhs)
          cases
    | Pexp_match (e0, cases) | Pexp_try (e0, cases) ->
        walk env rep e0;
        List.iter
          (fun c ->
            let env = List.map (fun n -> (n, Lopaque)) (pat_names c.pc_lhs) @ env in
            Option.iter (walk env rep) c.pc_guard;
            walk env rep c.pc_rhs)
          cases
    | Pexp_for (pat, e1, e2, _, body) ->
        walk env rep e1;
        walk env rep e2;
        walk (List.map (fun n -> (n, Lopaque)) (pat_names pat) @ env) true body
    | Pexp_while (cond, body) ->
        walk env rep cond;
        walk env true body
    | Pexp_apply (fn, args) when is_spawn fn ->
        (match args with
        | (_, closure) :: _ ->
            sites :=
              { sp_line = line_of e.pexp_loc; sp_rep = rep; sp_closure = closure; sp_env = env }
              :: !sites
        | [] -> ());
        List.iter (fun (_, a) -> walk env rep a) args
    | Pexp_apply (fn, args) ->
        walk env rep fn;
        let arg_rep = rep || replicating_head fn in
        List.iter
          (fun (_, a) ->
            match a.pexp_desc with
            | Pexp_fun _ | Pexp_function _ -> walk env arg_rep a
            | _ -> walk env rep a)
          args
    | _ -> List.iter (walk env rep) (sub_exprs e)
  in
  let rec item si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter (fun vb -> walk [] false vb.pvb_expr) vbs
    | Pstr_eval (e, _) -> walk [] false e
    | Pstr_module { pmb_expr; _ } -> module_expr pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> module_expr mb.pmb_expr) mbs
    | _ -> ()
  and module_expr me =
    match me.pmod_desc with
    | Pmod_structure s -> List.iter item s
    | Pmod_constraint (me, _) -> module_expr me
    | _ -> ()
  in
  List.iter item file.Source.ast;
  List.rev !sites

(* ------------------------------------------------------------------ *)
(* Site processing                                                     *)
(* ------------------------------------------------------------------ *)

type local_capture = {
  lc_site : site;
  lc_name : string;
  lc_kind : string;
  lc_line : int;
  lc_scope : expression;
  lc_direct : bool;  (** captured by the closure itself, not via a helper *)
  lc_via : string option;
}

let analyze (tree : Source.tree) : result =
  let annots = ref [] in
  let globals = build_globals annots tree in
  let resolve = resolver tree in
  let reach = build_reach globals resolve tree in
  let escapes = ref [] in
  List.iter
    (fun (file : Source.file) ->
      let sites = spawn_sites_of_file annots file in
      (* Pass 1: transitive captures of each site. *)
      let locals = ref [] in
      let global_cap site key ~via =
        match Hashtbl.find_opt globals key with
        | Some (Gmut { kind; line; shared }) -> (
            match shared with
            | Some a -> a.s_used <- true
            | None ->
                let def_file, name = key in
                (* A directly-named same-file global whose uses in the
                   closure are all lock-guarded is sanctioned. *)
                if
                  not
                    (via = None && def_file = file.Source.path
                    && mutex_guarded name site.sp_closure)
                then
                  escapes :=
                    {
                      e_file = file.Source.path;
                      e_line = site.sp_line;
                      e_name = name;
                      e_kind = kind;
                      e_def_file = def_file;
                      e_def_line = line;
                      e_via = via;
                    }
                    :: !escapes)
        | Some (Gfun _) ->
            KS.iter
              (fun mkey ->
                match Hashtbl.find_opt globals mkey with
                | Some (Gmut { kind; line; shared = None }) ->
                    let def_file, name = mkey in
                    escapes :=
                      {
                        e_file = file.Source.path;
                        e_line = site.sp_line;
                        e_name = name;
                        e_kind = kind;
                        e_def_file = def_file;
                        e_def_line = line;
                        e_via =
                          Some
                            (match via with
                            | Some v -> "call to " ^ v
                            | None -> "call to " ^ snd key);
                      }
                      :: !escapes
                | Some (Gmut { shared = Some a; _ }) -> a.s_used <- true
                | _ -> ())
              (reach key)
        | None -> ()
      in
      let process site =
        let visited = ref [] in
        let rec expand ~via ~direct env closure =
          if not (List.memq closure !visited) then begin
            visited := closure :: !visited;
            let bare, dotted = free_names closure in
            List.iter
              (fun n ->
                match List.assoc_opt n env with
                | Some (Lmut { kind; line; shared; scope }) -> (
                    match shared with
                    | Some a -> a.s_used <- true
                    | None ->
                        if not (direct && mutex_guarded n site.sp_closure) then
                          locals :=
                            {
                              lc_site = site;
                              lc_name = n;
                              lc_kind = kind;
                              lc_line = line;
                              lc_scope = scope;
                              lc_direct = direct;
                              lc_via = via;
                            }
                            :: !locals)
                | Some (Lfun (fenv, fe)) ->
                    expand ~via:(Some (Option.value ~default:n via)) ~direct:false fenv fe
                | Some Lopaque -> ()
                | None -> global_cap site (file.Source.path, n) ~via)
              bare;
            List.iter
              (fun parts ->
                Option.iter
                  (fun key -> global_cap site key ~via:(Some (String.concat "." parts)))
                  (resolve file parts))
              dotted
          end
        in
        expand ~via:None ~direct:true site.sp_env site.sp_closure
      in
      List.iter process sites;
      (* Pass 2: decide which local captures are escapes.  Identity of
         a binding is (name, definition line). *)
      let locals = List.rev !locals in
      let capturing_sites name line =
        List.filter (fun lc -> lc.lc_name = name && lc.lc_line = line) locals
        |> List.map (fun lc -> lc.lc_site.sp_line)
        |> List.sort_uniq compare |> List.length
      in
      List.iter
        (fun lc ->
          let sole_transfer =
            lc.lc_direct
            && (not lc.lc_site.sp_rep)
            && capturing_sites lc.lc_name lc.lc_line = 1
            && count_ident lc.lc_name lc.lc_scope
               = count_ident lc.lc_name lc.lc_site.sp_closure
          in
          if not sole_transfer then
            escapes :=
              {
                e_file = file.Source.path;
                e_line = lc.lc_site.sp_line;
                e_name = lc.lc_name;
                e_kind = lc.lc_kind;
                e_def_file = file.Source.path;
                e_def_line = lc.lc_line;
                e_via = lc.lc_via;
              }
              :: !escapes)
        locals)
    tree.Source.files;
  { escapes = List.rev !escapes; shared_annots = List.rev !annots }
