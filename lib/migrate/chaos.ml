(* Chaos injection for live migration, plus the app harness the tests,
   the CLI and the benchmark share.

   Each scenario must end with exactly one live, analysis-clean copy
   and zero frames of the losing copy left on the losing host:

   - Source_crash: the source host dies mid-round, after a round's
     writes but before its dirty frames hit the wire.  The target can
     only fail over to the round-0 checkpoint image — stale but
     consistent and re-verified — and the endpoint re-homes to it.
     The loser is the dead source; a dead host's RAM is gone with it,
     so its leak count is zero by definition (reboot wipes).
   - Target_crash: the target's migration daemon dies after restore
     but before the cutover ack.  Crash recovery must tear the
     restored copy down — the source never stopped being
     authoritative, so the target going live would be split brain.
     The leak check scans the target host for frames still owned by
     the torn-down copy.
   - Partition: the fabric partitions before the cutover ack crosses.
     Same obligation as Target_crash, from the other failure: the
     target holds a fully verified copy and still must not go live,
     because the source cannot know the handoff happened.

   [leak_inject] plants a frame owned by the losing copy on the losing
   host before the check runs — fault injection proving the leak
   checker actually catches what it claims to. *)

type scenario = Source_crash | Target_crash | Partition

let scenario_name = function
  | Source_crash -> "source-crash"
  | Target_crash -> "target-crash"
  | Partition -> "partition"

type verdict = {
  scenario : scenario;
  outcome : Engine.outcome;
  live_hid : int;
  analysis_findings : int;
  leaked_frames : int;
  split_brain : bool;
  downtime_ns : float;
  ok : bool;
}

(* ------------------------------------------------------------------ *)
(* App harness                                                         *)
(* ------------------------------------------------------------------ *)

type app = {
  container : Cki.Container.t;
  task : Kernel_model.Task.t;
  heap : Hw.Addr.va;
  heap_pages : int;
}

(* Boot a container with a dirty heap and a config file — enough state
   that its image is not trivial — on fabric host [hid]. *)
let boot_app ?(heap_pages = 1024) fab ~hid =
  let host = Fabric.host fab hid in
  let c = Cki.Container.create host in
  let b = Cki.Container.backend c in
  let task = Virt.Backend.spawn b in
  let heap =
    match
      Virt.Backend.syscall_exn b task
        (Kernel_model.Syscall.Mmap { pages = heap_pages; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> failwith "Chaos.boot_app: mmap"
  in
  ignore
    (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:heap ~pages:heap_pages
       ~write:true);
  let fd =
    match
      Virt.Backend.syscall_exn b task
        (Kernel_model.Syscall.Open { path = "/app.conf"; create = true })
    with
    | Kernel_model.Syscall.Rint fd -> fd
    | _ -> failwith "Chaos.boot_app: open"
  in
  (match
     Virt.Backend.syscall_exn b task
       (Kernel_model.Syscall.Write { fd; data = Bytes.of_string "role=migratable\n" })
   with
  | Kernel_model.Syscall.Rint _ -> ()
  | _ -> failwith "Chaos.boot_app: write");
  { container = c; task; heap; heap_pages }

(* Dirty [writes] pseudo-random heap pages (deterministic in [round]).
   Goes through Mm.touch, so a page the tracking epoch protected takes
   the write-protect fault and lands in the dirty log. *)
let dirt a ~round ~writes =
  let mm = a.task.Kernel_model.Task.mm in
  let x = ref (((round * 2654435761) land 0x3FFFFFFF) lor 1) in
  for _ = 1 to writes do
    x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF;
    let p = !x mod a.heap_pages in
    Kernel_model.Mm.touch mm (a.heap + (p * Hw.Addr.page_size)) ~write:true
  done

(* The engine's [work] callback: the source serves during each round's
   wire time, dirtying pages at [rate] pages per nanosecond.  With
   rate * per-page wire time < 1 the dirty counts shrink geometrically
   round over round — the convergence condition made concrete. *)
let default_rate = 4.0e-5

let work_of ?(rate = default_rate) a ~round ~budget_ns =
  dirt a ~round ~writes:(int_of_float (budget_ns *. rate))

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

let engine_chaos = function
  | Source_crash -> Engine.Source_crash_mid_round 2
  | Target_crash -> Engine.Target_crash_before_cutover
  | Partition -> Engine.Partition_before_cutover

let expected_outcome = function
  | Source_crash -> Engine.Failed_over
  | Target_crash | Partition -> Engine.Aborted

(* Frames of the losing copy left on the losing host.  A dead host's
   RAM does not survive it — reboot wipes — so only a live loser can
   leak. *)
let leaked fab (st : Engine.stats) =
  if Fabric.alive fab st.Engine.loser_hid then
    Fabric.owned_frames fab ~hid:st.Engine.loser_hid ~container:st.Engine.loser_container
  else 0

let run ?(leak_inject = false) scenario =
  let fab = Fabric.create ~hosts:2 () in
  let a = boot_app fab ~hid:0 in
  ignore (Fabric.expose fab ~name:"svc" ~home:0);
  let opts = { Engine.default_opts with Engine.chaos = Some (engine_chaos scenario) } in
  match Engine.migrate fab ~src:0 ~dst:1 ~name:"svc" a.container ~work:(work_of a) opts with
  | Error e -> failwith ("Chaos.run: " ^ Engine.show_error e)
  | Ok st ->
      if leak_inject && Fabric.alive fab st.Engine.loser_hid then
        ignore
          (Hw.Phys_mem.alloc
             (Hw.Machine.mem (Fabric.machine fab st.Engine.loser_hid))
             ~owner:(Hw.Phys_mem.Container st.Engine.loser_container)
             ~kind:Hw.Phys_mem.Data);
      let findings = List.length (Analysis.check_machine ~containers:[ st.Engine.live ]) in
      let leaked_frames = leaked fab st in
      (* A second live copy needs frames: zero frames of the losing
         copy on the losing host (or a dead host) means nobody else
         can serve — no split brain. *)
      let split_brain = leaked_frames > 0 && Fabric.alive fab st.Engine.loser_hid in
      {
        scenario;
        outcome = st.Engine.outcome;
        live_hid = st.Engine.live_hid;
        analysis_findings = findings;
        leaked_frames;
        split_brain;
        downtime_ns = st.Engine.downtime_ns;
        ok =
          st.Engine.outcome = expected_outcome scenario
          && findings = 0 && leaked_frames = 0 && not split_brain;
      }

let all ?leak_inject () = List.map (run ?leak_inject) [ Source_crash; Target_crash; Partition ]
