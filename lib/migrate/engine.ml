(* The live-migration engine: iterative pre-copy as
   snapshot-over-the-wire.

   Protocol (the classic pre-copy loop, specialized to the snapshot
   machinery this repo already has):

   1. Quiesce virtio and capture a consistent checkpoint image of the
      source (Capture.capture); ship it whole — round 0.  The source
      keeps serving; the checkpoint doubles as the failover point if
      the source host dies mid-migration.
   2. Start a dirty-tracking epoch (Mm.dirty_track_start): every
      resident writable page is write-protected through the KSM path
      with a full TLB shootdown — the same downgrade discipline
      Template.freeze uses, so the trace linter stays clean.
   3. Rounds: run the caller's [work] (the source serving traffic) for
      a time budget equal to the previous transfer's wire time, harvest
      the dirty set, ship [dirty * page_size] bytes.  The budget
      coupling is what makes convergence physical: each round's dirt is
      proportional to the previous round's transfer time, so when
      (write rate x per-page wire time) < 1 the resent-frame counts
      decrease geometrically.  A round cap bounds the tail.
   4. Stop-and-copy: freeze the endpoint (client frames buffer), end
      the epoch (restoring PTE protections so the capture sees the
      container's real state), quiesce, capture the final image, ship
      only the final dirty set, rebuild on the target with
      Snapshot.Restore and re-verify with Analysis.check_machine
      *before* cutover.  Cutover re-homes the endpoint, replays the
      buffered frames and destroys the source.  The downtime is this
      whole window — the only span where nobody serves.

   Rounds are charged as wire traffic but not materialized into
   target-side state: the only consistent restore points are the
   checkpoint image and the final image (snapshot-over-the-wire), which
   is also what makes the chaos semantics honest — a source crash can
   only fail over to the checkpoint, never to a half-applied round.

   [opts.chaos] injects the three chaos scenarios at their protocol
   points; Chaos wraps this with the post-conditions (exactly one
   live, analysis-clean copy; zero leaked frames on the loser). *)

type chaos =
  | Source_crash_mid_round of int
  | Target_crash_before_cutover
  | Partition_before_cutover

type opts = {
  rounds_max : int;
  converge_frames : int;
  verify : bool;
  chaos : chaos option;
}

let default_opts = { rounds_max = 8; converge_frames = 8; verify = true; chaos = None }

type outcome = Completed | Failed_over | Aborted

type round_stat = { r_round : int; r_dirty : int; r_budget_ns : float; r_transfer_ns : float }

type stats = {
  outcome : outcome;
  live : Cki.Container.t;
  live_hid : int;
  loser_hid : int;
  loser_container : int;
  downtime_ns : float;
  total_ns : float;
  rounds : round_stat list;
  frames_full : int;
  frames_resent : int;
  final_dirty : int;
  converged : bool;
  replayed : int;
  final_image : Snapshot.Image.t option;
}

type error =
  | Capture_failed of string
  | Restore_failed of string
  | Verify_failed of string
  | Link_down of string

let show_error = function
  | Capture_failed s -> "capture: " ^ s
  | Restore_failed s -> "restore: " ^ s
  | Verify_failed s -> "verify: " ^ s
  | Link_down s -> "link: " ^ s

exception Fail of error

let tasks c = Kernel_model.Kernel.tasks c.Cki.Container.backend.Virt.Backend.kernel

let shootdown_of c va =
  Array.iter (fun cpu -> Hw.Cpu.exec_priv_exn cpu (Hw.Priv.Invlpg va)) c.Cki.Container.cpus

let track_start c =
  List.fold_left
    (fun n (t : Kernel_model.Task.t) ->
      n + Kernel_model.Mm.dirty_track_start t.Kernel_model.Task.mm ~shootdown:(shootdown_of c))
    0 (tasks c)

let track_round c =
  List.fold_left
    (fun n (t : Kernel_model.Task.t) ->
      n
      + List.length
          (Kernel_model.Mm.dirty_track_round t.Kernel_model.Task.mm ~shootdown:(shootdown_of c)))
    0 (tasks c)

let track_finish c =
  List.fold_left
    (fun n (t : Kernel_model.Task.t) ->
      n + List.length (Kernel_model.Mm.dirty_track_finish t.Kernel_model.Task.mm))
    0 (tasks c)

(* Service virtio queues until nothing is in flight: capture requires
   quiesced devices.  Drained TX frames go to [on_tx] (the caller may
   forward replies; default drops them on the floor, which is what a
   migration daemon does with traffic it cannot attribute). *)
let quiesce ?(on_tx = fun (_ : Bytes.t) -> ()) c =
  let kernel = c.Cki.Container.backend.Virt.Backend.kernel in
  let passes = ref 0 in
  while Kernel_model.Kernel.io_unreclaimed kernel <> [] && !passes < 32 do
    ignore (Kernel_model.Kernel.host_service_net_tx kernel ~handle:on_tx);
    ignore (Kernel_model.Kernel.host_service_blk kernel ~handle:on_tx);
    incr passes
  done

let capture_exn c =
  match Snapshot.Capture.capture c with
  | Ok image -> image
  | Error e -> raise (Fail (Capture_failed (Snapshot.Capture.show_error e)))

let transfer_exn fab ~src ~dst ~bytes =
  match Fabric.transfer fab ~src ~dst ~bytes with
  | Ok ns -> ns
  | Error s -> raise (Fail (Link_down s))

let restore_exn ~verify host image =
  match Snapshot.Restore.restore ~verify host image with
  | Ok c -> c
  | Error (Snapshot.Restore.Verify_failed s) -> raise (Fail (Verify_failed s))
  | Error e -> raise (Fail (Restore_failed (Snapshot.Restore.show_error e)))

let page = Hw.Addr.page_size

(* Wall-clock bracket over both ends: the fabric synchronizes the two
   clocks at every transfer, so max(now, now) is the fabric-global
   instant at any rendezvous point. *)
let global_now fab ~src ~dst =
  Float.max (Hw.Clock.now (Fabric.clock fab src)) (Hw.Clock.now (Fabric.clock fab dst))

let migrate fab ~src ~dst ~name c ~work opts =
  let src_id = c.Cki.Container.container_id in
  let started_ns = global_now fab ~src ~dst in
  let frames_full = Snapshot.Restore.materialized_frames c in
  try
    (* -------- checkpoint + round 0 (source keeps serving) ---------- *)
    quiesce c;
    let image0 = capture_exn c in
    let precopy = opts.rounds_max > 0 in
    let budget0 =
      if precopy then transfer_exn fab ~src ~dst ~bytes:(frames_full * page) else 0.0
    in
    (* -------- pre-copy rounds -------------------------------------- *)
    let rounds = ref [] in
    let frames_resent = ref 0 in
    let converged = ref (not precopy) in
    let crashed = ref false in
    if precopy then begin
      ignore (track_start c);
      let budget = ref budget0 in
      (try
         for r = 1 to opts.rounds_max do
           work ~round:r ~budget_ns:!budget;
           let dirty = track_round c in
           (match opts.chaos with
           | Some (Source_crash_mid_round k) when r = k ->
               (* The host dies after the round's writes but before its
                  dirty frames reach the wire: those frames are lost,
                  which is why failover can only use the checkpoint. *)
               Fabric.crash_host fab src;
               crashed := true;
               raise Exit
           | _ -> ());
           let t_ns = transfer_exn fab ~src ~dst ~bytes:(dirty * page) in
           frames_resent := !frames_resent + dirty;
           rounds := { r_round = r; r_dirty = dirty; r_budget_ns = !budget; r_transfer_ns = t_ns } :: !rounds;
           budget := t_ns;
           if dirty <= opts.converge_frames then begin
             converged := true;
             raise Exit
           end
         done
       with Exit -> ())
    end;
    let rounds = List.rev !rounds in
    if !crashed then begin
      (* ---------- failover: source host died mid-migration ---------- *)
      let t0 = Hw.Clock.now (Fabric.clock fab dst) in
      Fabric.freeze fab ~name;
      let target = restore_exn ~verify:opts.verify (Fabric.host fab dst) image0 in
      (match Analysis.check_machine ~containers:[ target ] with
      | [] -> ()
      | vs ->
          raise (Fail (Verify_failed (Printf.sprintf "%d invariant findings on failover copy" (List.length vs)))));
      Fabric.rehome fab ~name ~to_:dst;
      let replayed = Fabric.unfreeze fab ~name in
      let downtime = Hw.Clock.now (Fabric.clock fab dst) -. t0 in
      Ok
        {
          outcome = Failed_over;
          live = target;
          live_hid = dst;
          loser_hid = src;
          loser_container = src_id;
          downtime_ns = downtime;
          total_ns = Hw.Clock.now (Fabric.clock fab dst) -. started_ns;
          rounds;
          frames_full;
          frames_resent = !frames_resent;
          final_dirty = 0;
          converged = false;
          replayed;
          final_image = None;
        }
    end
    else begin
      (* ---------------- stop-and-copy + cutover ---------------------- *)
      Fabric.freeze fab ~name;
      let t0 = global_now fab ~src ~dst in
      let final_dirty = if precopy then track_finish c else frames_full in
      quiesce c;
      let final_image = capture_exn c in
      ignore (transfer_exn fab ~src ~dst ~bytes:(final_dirty * page));
      frames_resent := !frames_resent + (if precopy then final_dirty else 0);
      let target = restore_exn ~verify:opts.verify (Fabric.host fab dst) final_image in
      (* Re-verify before cutover: a copy that fails the sanitizer never
         goes live, whatever the restore path claimed. *)
      (match Analysis.check_machine ~containers:[ target ] with
      | [] -> ()
      | vs ->
          Cki.Container.destroy target;
          Fabric.unfreeze fab ~name |> ignore;
          raise
            (Fail (Verify_failed (Printf.sprintf "%d invariant findings before cutover" (List.length vs)))));
      let abort () =
        (* The target copy must not go live without the cutover ack: no
           split brain.  Tear it down, leak-checkably, and let the
           source resume serving. *)
        let dst_id = target.Cki.Container.container_id in
        Cki.Container.destroy target;
        let replayed = Fabric.unfreeze fab ~name in
        let now = global_now fab ~src ~dst in
        Ok
          {
            outcome = Aborted;
            live = c;
            live_hid = src;
            loser_hid = dst;
            loser_container = dst_id;
            downtime_ns = now -. t0;
            total_ns = now -. started_ns;
            rounds;
            frames_full;
            frames_resent = !frames_resent;
            final_dirty;
            converged = !converged;
            replayed;
            final_image = Some final_image;
          }
      in
      match opts.chaos with
      | Some Target_crash_before_cutover ->
          (* The target's migration daemon dies before the ack; its
             crash-recovery must tear the restored copy down. *)
          abort ()
      | Some Partition_before_cutover ->
          Fabric.partition fab src dst;
          (* The cutover ack cannot cross a partitioned link. *)
          (match Fabric.transfer fab ~src ~dst ~bytes:64 with
          | Ok _ -> assert false
          | Error _ -> ());
          abort ()
      | _ ->
          (* Cutover ack (a tiny control message), then the switchover. *)
          ignore (transfer_exn fab ~src ~dst ~bytes:64);
          Fabric.rehome fab ~name ~to_:dst;
          let replayed = Fabric.unfreeze fab ~name in
          Cki.Container.destroy c;
          let now = global_now fab ~src ~dst in
          Ok
            {
              outcome = Completed;
              live = target;
              live_hid = dst;
              loser_hid = src;
              loser_container = src_id;
              downtime_ns = now -. t0;
              total_ns = now -. started_ns;
              rounds;
              frames_full;
              frames_resent = !frames_resent;
              final_dirty;
              converged = !converged;
              replayed;
              final_image = Some final_image;
            }
    end
  with Fail e -> Error e
