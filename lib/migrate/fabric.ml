(* A multi-host fabric: N independent machines (own physical memory,
   clock, CKI host, I/O-plane switch) joined by inter-host links with
   simulated bandwidth and latency.

   Time model: a transfer charges [latency + bytes/bw] to *both* ends'
   clocks and then synchronizes them to the later of the two — the two
   machines block on the same wire, so their clocks agree at every
   rendezvous point.  Between transfers the clocks run free, which is
   exactly the semantics the migration engine needs: source serving
   time accrues on the source clock only.

   Endpoints are the re-homable half of the model: a named service
   port that client traffic is addressed to.  [deliver] lands frames
   in the port's inbox on whichever host currently homes the endpoint;
   [freeze] buffers them instead (the cutover window); [rehome] moves
   the port to another host atomically and [unfreeze] replays the
   buffer into the new inbox — the "no dropped traffic" half of live
   migration.

   [crash_host] and [partition]/[heal] are the chaos surface: a dead
   host refuses transfers and deliveries; a partitioned pair refuses
   transfers while both stay alive. *)

type link = { bw_bytes_per_ns : float; latency_ns : float }

type node = {
  hid : int;
  machine : Hw.Machine.t;
  host : Cki.Host.t;
  switch : Ioplane.Switch.t;
  mutable alive : bool;
}

type endpoint = {
  ep_name : string;
  mutable ep_home : int;
  mutable ep_port : Ioplane.Switch.port;
  mutable ep_frozen : bool;
  ep_buffer : Bytes.t Queue.t;
  mutable ep_delivered : int;
  mutable ep_dropped : int;
}

type t = {
  nodes : node array;
  link : link;
  mutable partitions : (int * int) list;
  endpoints : (string, endpoint) Hashtbl.t;
  mutable xfer_bytes : int;
  mutable xfer_ops : int;
}

let default_link = { bw_bytes_per_ns = 1.0 (* 1 GB/s *); latency_ns = 20_000.0 }

let create ?(cpus = 2) ?(mem_mib = 512) ?(link = default_link) ~hosts () =
  if hosts < 1 then invalid_arg "Fabric.create";
  let nodes =
    Array.init hosts (fun hid ->
        let machine = Hw.Machine.create ~cpus ~mem_mib () in
        {
          hid;
          machine;
          host = Cki.Host.create machine;
          switch = Ioplane.Switch.create (Hw.Machine.clock machine);
          alive = true;
        })
  in
  { nodes; link; partitions = []; endpoints = Hashtbl.create 4; xfer_bytes = 0; xfer_ops = 0 }

let num_hosts t = Array.length t.nodes

let node t hid =
  if hid < 0 || hid >= Array.length t.nodes then invalid_arg "Fabric.node";
  t.nodes.(hid)

let host t hid = (node t hid).host
let machine t hid = (node t hid).machine
let switch t hid = (node t hid).switch
let alive t hid = (node t hid).alive
let clock t hid = Hw.Machine.clock (node t hid).machine

(* ------------------------------------------------------------------ *)
(* Links                                                               *)
(* ------------------------------------------------------------------ *)

let pair a b = (min a b, max a b)
let partitioned t a b = List.mem (pair a b) t.partitions

let partition t a b =
  if not (partitioned t a b) then t.partitions <- pair a b :: t.partitions

let heal t a b = t.partitions <- List.filter (fun p -> p <> pair a b) t.partitions
let crash_host t hid = (node t hid).alive <- false

(* Synchronize two clocks to the later one — both ends of a blocking
   transfer leave the rendezvous at the same simulated instant. *)
let sync_clocks ca cb =
  let m = Float.max (Hw.Clock.now ca) (Hw.Clock.now cb) in
  Hw.Clock.advance ca (m -. Hw.Clock.now ca);
  Hw.Clock.advance cb (m -. Hw.Clock.now cb)

let transfer_ns t ~bytes = t.link.latency_ns +. (float_of_int bytes /. t.link.bw_bytes_per_ns)

let transfer t ~src ~dst ~bytes =
  let s = node t src and d = node t dst in
  if not s.alive then Error (Printf.sprintf "source host %d is down" src)
  else if not d.alive then Error (Printf.sprintf "target host %d is down" dst)
  else if partitioned t src dst then
    Error (Printf.sprintf "link %d<->%d is partitioned" src dst)
  else begin
    let ns = transfer_ns t ~bytes in
    let cs = Hw.Machine.clock s.machine and cd = Hw.Machine.clock d.machine in
    sync_clocks cs cd;
    Hw.Clock.charge cs "fabric_transfer" ns;
    Hw.Clock.charge cd "fabric_transfer" ns;
    t.xfer_bytes <- t.xfer_bytes + bytes;
    t.xfer_ops <- t.xfer_ops + 1;
    Ok ns
  end

let transferred_bytes t = t.xfer_bytes
let transfer_count t = t.xfer_ops

(* ------------------------------------------------------------------ *)
(* Endpoints                                                           *)
(* ------------------------------------------------------------------ *)

let expose t ~name ~home =
  if Hashtbl.mem t.endpoints name then invalid_arg "Fabric.expose: endpoint exists";
  let n = node t home in
  let ep =
    {
      ep_name = name;
      ep_home = home;
      ep_port = Ioplane.Switch.port n.switch ~name;
      ep_frozen = false;
      ep_buffer = Queue.create ();
      ep_delivered = 0;
      ep_dropped = 0;
    }
  in
  Hashtbl.replace t.endpoints name ep;
  ep

let endpoint t name =
  match Hashtbl.find_opt t.endpoints name with
  | Some ep -> ep
  | None -> invalid_arg ("Fabric.endpoint: no endpoint " ^ name)

let endpoint_home t name = (endpoint t name).ep_home
let endpoint_port t name = (endpoint t name).ep_port
let buffered t name = Queue.length (endpoint t name).ep_buffer
let delivered t name = (endpoint t name).ep_delivered
let dropped t name = (endpoint t name).ep_dropped

(* Client traffic addressed to the endpoint: lands in the live inbox,
   or the cutover buffer while frozen.  A dead home host drops (and
   counts) the frame — clients see loss, not silent buffering. *)
let deliver t ~name frame =
  let ep = endpoint t name in
  if ep.ep_frozen then Queue.add frame ep.ep_buffer
  else if not (node t ep.ep_home).alive then ep.ep_dropped <- ep.ep_dropped + 1
  else begin
    Queue.add frame ep.ep_port.Ioplane.Switch.inbox;
    ep.ep_delivered <- ep.ep_delivered + 1
  end

let freeze t ~name = (endpoint t name).ep_frozen <- true

(* Atomic re-home: the endpoint's port moves to [to_]'s switch.  Frames
   buffered while frozen survive the move and are replayed by
   [unfreeze] — cutover loses nothing. *)
let rehome t ~name ~to_ =
  let ep = endpoint t name in
  let n = node t to_ in
  if not n.alive then invalid_arg "Fabric.rehome: target host is down";
  ep.ep_home <- to_;
  ep.ep_port <- Ioplane.Switch.port n.switch ~name:ep.ep_name

let unfreeze t ~name =
  let ep = endpoint t name in
  ep.ep_frozen <- false;
  let replayed = Queue.length ep.ep_buffer in
  Queue.iter
    (fun frame ->
      Queue.add frame ep.ep_port.Ioplane.Switch.inbox;
      ep.ep_delivered <- ep.ep_delivered + 1)
    ep.ep_buffer;
  Queue.clear ep.ep_buffer;
  replayed

(* ------------------------------------------------------------------ *)
(* Frame accounting (the chaos leak check)                             *)
(* ------------------------------------------------------------------ *)

(* Frames on host [hid] still owned by container [container] (data or
   KSM).  After a migration completes — or aborts — the losing copy
   must account for exactly zero. *)
let owned_frames t ~hid ~container =
  let mem = Hw.Machine.mem (node t hid).machine in
  let n = ref 0 in
  for pfn = 0 to Hw.Phys_mem.total_frames mem - 1 do
    match Hw.Phys_mem.owner mem pfn with
    | (Hw.Phys_mem.Container k | Hw.Phys_mem.Ksm k) when k = container -> incr n
    | _ -> ()
  done;
  !n
