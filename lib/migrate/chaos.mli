(** Chaos injection for live migration, plus the shared app harness.

    Each scenario must end with exactly one live, analysis-clean copy
    and zero frames of the losing copy on the losing host — no split
    brain, no leaked frames.  {!run} executes one scenario on a fresh
    2-host fabric and checks exactly that; [leak_inject] plants a
    frame owned by the losing copy before the check, proving the leak
    checker catches what it claims to (the verdict must flip to not
    ok). *)

type scenario =
  | Source_crash  (** source host dies mid-round; failover to checkpoint *)
  | Target_crash  (** target daemon dies before the ack; target copy torn down *)
  | Partition  (** fabric partitions before the ack; target copy torn down *)

val scenario_name : scenario -> string

type verdict = {
  scenario : scenario;
  outcome : Engine.outcome;
  live_hid : int;
  analysis_findings : int;  (** sanitizer findings on the live copy *)
  leaked_frames : int;  (** losing copy's frames left on the losing host *)
  split_brain : bool;
  downtime_ns : float;
  ok : bool;
}

(** {2 App harness} (shared by tests, CLI and the bench) *)

type app = {
  container : Cki.Container.t;
  task : Kernel_model.Task.t;
  heap : Hw.Addr.va;
  heap_pages : int;
}

val boot_app : ?heap_pages:int -> Fabric.t -> hid:int -> app
(** Container with a dirty [heap_pages]-page heap (default 1024) and a
    tmpfs config file on fabric host [hid]. *)

val dirt : app -> round:int -> writes:int -> unit
(** Dirty [writes] pseudo-random heap pages, deterministic in
    [round], through {!Kernel_model.Mm.touch} — protected pages take
    the write-protect fault and land in the dirty log. *)

val default_rate : float
(** Pages dirtied per nanosecond of serving (4e-5 = 40 pages/ms):
    below the link's per-page wire rate, so pre-copy converges. *)

val work_of : ?rate:float -> app -> round:int -> budget_ns:float -> unit
(** An {!Engine.migrate} [work] callback dirtying [rate * budget]
    pages per round. *)

val run : ?leak_inject:bool -> scenario -> verdict
val all : ?leak_inject:bool -> unit -> verdict list
(** All three scenarios, each on a fresh fabric. *)
