(** The live-migration engine: iterative pre-copy as
    snapshot-over-the-wire.

    The protocol: quiesce and capture a consistent checkpoint, ship it
    whole while the source keeps serving (round 0); start a
    dirty-tracking epoch ({!Kernel_model.Mm.dirty_track_start} — every
    writable resident page write-protected through the KSM with a full
    TLB shootdown); run rounds of [work] (source serving for the
    previous transfer's wire time) + harvest + ship dirty frames until
    the dirty set converges or the round cap fires; then stop-and-copy:
    freeze the endpoint, end the epoch, capture the final image, ship
    only the final dirty set, rebuild on the target via
    {!Snapshot.Restore} and re-verify with {!Analysis.check_machine}
    {e before} cutover; re-home the endpoint, replay buffered frames,
    destroy the source.  Downtime is the stop-and-copy window — the
    only span in which nobody serves.

    Rounds are charged as wire traffic but not materialized as
    target-side state: the only consistent restore points are the
    checkpoint and final images, so a source crash can only fail over
    to the checkpoint, never to a half-applied round.

    [rounds_max = 0] degenerates to pure stop-and-copy (the whole
    image ships inside the downtime window) — the baseline the bench
    compares pre-copy against. *)

type chaos =
  | Source_crash_mid_round of int
      (** the source host dies after round [n]'s writes, before its
          dirty frames reach the wire *)
  | Target_crash_before_cutover
      (** the target's migration daemon dies after restore+verify;
          crash recovery must tear the restored copy down *)
  | Partition_before_cutover
      (** the fabric partitions before the cutover ack crosses; the
          verified target copy must still not go live *)

type opts = {
  rounds_max : int;  (** round cap; 0 = pure stop-and-copy *)
  converge_frames : int;  (** stop pre-copy once a round's dirty set is this small *)
  verify : bool;  (** run the analysis scanner inside restore *)
  chaos : chaos option;
}

val default_opts : opts
(** 8 rounds max, converge at <= 8 frames, verify on, no chaos. *)

type outcome =
  | Completed  (** normal cutover; the target serves, the source is destroyed *)
  | Failed_over  (** source died; the target serves the round-0 checkpoint *)
  | Aborted  (** cutover impossible; the source serves on, the target copy is destroyed *)

type round_stat = { r_round : int; r_dirty : int; r_budget_ns : float; r_transfer_ns : float }

type stats = {
  outcome : outcome;
  live : Cki.Container.t;  (** the one live copy *)
  live_hid : int;
  loser_hid : int;  (** host whose copy must account for zero frames *)
  loser_container : int;  (** container id of the losing copy *)
  downtime_ns : float;  (** the stop-and-copy (or failover) window *)
  total_ns : float;
  rounds : round_stat list;
  frames_full : int;  (** materialized frames shipped in round 0 *)
  frames_resent : int;  (** dirty frames shipped across rounds + final *)
  final_dirty : int;
  converged : bool;  (** dirty threshold reached, vs. round cap *)
  replayed : int;  (** buffered client frames replayed at cutover *)
  final_image : Snapshot.Image.t option;
      (** the stop-and-copy capture — the golden reference a target
          re-capture must reproduce byte-identically *)
}

type error =
  | Capture_failed of string
  | Restore_failed of string
  | Verify_failed of string
  | Link_down of string

val show_error : error -> string

val quiesce : ?on_tx:(Bytes.t -> unit) -> Cki.Container.t -> unit
(** Service virtio queues until nothing is in flight (capture
    requires quiesced devices); drained TX frames go to [on_tx]. *)

val migrate :
  Fabric.t ->
  src:int ->
  dst:int ->
  name:string ->
  Cki.Container.t ->
  work:(round:int -> budget_ns:float -> unit) ->
  opts ->
  (stats, error) result
(** Migrate a container from fabric host [src] to [dst], re-homing
    endpoint [name] at cutover.  [work] is the source serving loop: it
    runs once per pre-copy round with the previous transfer's wire
    time as its budget.  The container must be fully materialized (no
    un-broken CoW pages) — warm clones migrate after their first
    capture-quiesce, like any other container. *)
