(** A multi-host fabric: N independent machines (own physical memory,
    clock, CKI host, I/O-plane switch) joined by links with simulated
    bandwidth and latency.

    A transfer charges [latency + bytes/bw] to {e both} ends' clocks
    and synchronizes them to the later one — the two machines block on
    the same wire, so their clocks agree at every rendezvous.  Between
    transfers the clocks run free: source serving time accrues on the
    source clock only.

    {e Endpoints} are the re-homable service ports of live migration:
    {!deliver} lands client frames in the inbox on whichever host
    currently homes the endpoint, {!freeze} buffers them during the
    cutover window, {!rehome} moves the port atomically and
    {!unfreeze} replays the buffer into the new inbox.

    {!crash_host} and {!partition} are the chaos surface: a dead host
    refuses transfers and drops deliveries; a partitioned pair refuses
    transfers while both stay alive. *)

type link = { bw_bytes_per_ns : float; latency_ns : float }

type node = {
  hid : int;
  machine : Hw.Machine.t;
  host : Cki.Host.t;
  switch : Ioplane.Switch.t;
  mutable alive : bool;
}

type endpoint = {
  ep_name : string;
  mutable ep_home : int;
  mutable ep_port : Ioplane.Switch.port;
  mutable ep_frozen : bool;
  ep_buffer : Bytes.t Queue.t;
  mutable ep_delivered : int;
  mutable ep_dropped : int;
}

type t

val default_link : link
(** 1 GB/s, 20 us latency — a modest datacenter NIC. *)

val create : ?cpus:int -> ?mem_mib:int -> ?link:link -> hosts:int -> unit -> t

val num_hosts : t -> int
val node : t -> int -> node
val host : t -> int -> Cki.Host.t
val machine : t -> int -> Hw.Machine.t
val switch : t -> int -> Ioplane.Switch.t
val clock : t -> int -> Hw.Clock.t
val alive : t -> int -> bool

val transfer : t -> src:int -> dst:int -> bytes:int -> (float, string) result
(** Move [bytes] over the link; returns the wire time charged to both
    clocks, or [Error] when either end is dead or the pair is
    partitioned. *)

val transfer_ns : t -> bytes:int -> float
(** Wire time a transfer of [bytes] would take (no side effects). *)

val transferred_bytes : t -> int
val transfer_count : t -> int

val crash_host : t -> int -> unit
val partition : t -> int -> int -> unit
val heal : t -> int -> int -> unit

val expose : t -> name:string -> home:int -> endpoint
val endpoint : t -> string -> endpoint
val endpoint_home : t -> string -> int
val endpoint_port : t -> string -> Ioplane.Switch.port

val deliver : t -> name:string -> Bytes.t -> unit
(** Client frame addressed to the endpoint: inbox when live, buffer
    when frozen, counted drop when the home host is dead. *)

val freeze : t -> name:string -> unit
val rehome : t -> name:string -> to_:int -> unit
val unfreeze : t -> name:string -> int
(** Replay buffered frames into the (possibly re-homed) inbox; returns
    the number replayed. *)

val buffered : t -> string -> int
val delivered : t -> string -> int
val dropped : t -> string -> int

val owned_frames : t -> hid:int -> container:int -> int
(** Frames on host [hid] still owned by [container] (data or KSM) —
    the chaos leak check: the losing copy of a migration must account
    for exactly zero. *)
