(* HVM: hardware-assisted virtualization (the Kata Containers
   configuration).

   The guest kernel manages its own first-stage page tables natively —
   no exits on PTE writes, native syscalls.  The costs appear in:
     - EPT violations when the guest touches a fresh gPA (a VM exit +
       second-stage mapping; in a nested cloud the L1 hypervisor has no
       hardware EPT, so the L0 kernel maintains a *shadow* EPT and each
       violation bounces L2->L0->L1->L0->L2),
     - a two-dimensional page walk on every TLB miss,
     - VM exits for every hypercall / VirtIO doorbell / interrupt. *)

type state = {
  machine : Hw.Machine.t;
  container_id : int;
  vmcs : Hw.Vmcs.t;
  ept : Hw.Ept.t;
  (* Guest-physical frame allocation: gfns are container-local. *)
  mutable next_gfn : int;
  mutable free_gfns : int list;
  (* Guest first-stage page tables, one per guest address space. *)
  spaces : (int, Hw.Page_table.t) Hashtbl.t;
  mutable next_as : int;
  nested : bool;
}

(* Process-wide id allocator.  [Atomic.t] so backends created from
   different domains (the planned container-sharding engine) never mint
   the same id; single-domain behaviour is unchanged. *)
let next_container_id = Atomic.make 0

(* Install the second-stage mapping for [gfn], allocating a host frame
   and charging the EPT-violation cost.  This is the VM-exit path a
   fresh gPA takes on first touch; with huge EPT mappings one violation
   backs 512 pages, which is how "RunC 2M" amortizes (Figure 12). *)
let ept_fault_service st gfn =
  let mem = Hw.Machine.mem st.machine in
  let clock = Hw.Machine.clock st.machine in
  let charge_fault () =
    ignore (st.ept |> Hw.Ept.violations);
    Hw.Clock.count clock "ept_fault";
    Hw.Clock.charge clock
      (if st.nested then "ept_fault_nst" else "ept_fault_bm")
      (if st.nested then Hw.Cost.ept_fault_nst else Hw.Cost.ept_fault_bm)
  in
  if Hw.Ept.huge_enabled st.ept then begin
    let gfn_base = gfn land lnot 511 in
    if not (Hw.Ept.is_mapped st.ept (Hw.Addr.pa_of_pfn gfn_base)) then begin
      charge_fault ();
      let hfn =
        Hw.Phys_mem.alloc_contiguous mem ~owner:(Hw.Phys_mem.Container st.container_id)
          ~kind:Hw.Phys_mem.Data ~count:512
      in
      Hw.Ept.map_huge st.ept ~gfn:gfn_base ~hfn
    end
  end
  else if not (Hw.Ept.is_mapped st.ept (Hw.Addr.pa_of_pfn gfn)) then begin
    charge_fault ();
    let hfn =
      Hw.Phys_mem.alloc mem ~owner:(Hw.Phys_mem.Container st.container_id) ~kind:Hw.Phys_mem.Data
    in
    Hw.Ept.map st.ept ~gfn ~hfn
  end

let create ?(env = Env.Bare_metal) ?(ept_huge = false) (machine : Hw.Machine.t) : Backend.t =
  let clock = Hw.Machine.clock machine in
  let nested = Env.is_nested env in
  let container_id = Atomic.fetch_and_add next_container_id 1 + 1 in
  let st =
    {
      machine;
      container_id;
      vmcs = Hw.Vmcs.create ~id:container_id ~nested;
      ept = Hw.Ept.create (Hw.Machine.mem machine) ~huge:ept_huge;
      next_gfn = 0;
      free_gfns = [];
      spaces = Hashtbl.create 8;
      next_as = 0;
      nested;
    }
  in
  Hw.Vmcs.launch st.vmcs;
  let mem = Hw.Machine.mem machine in
  let alloc_gfn () =
    match st.free_gfns with
    | g :: rest ->
        st.free_gfns <- rest;
        g
    | [] ->
        let g = st.next_gfn in
        st.next_gfn <- g + 1;
        g
  in
  let pt_of id =
    match Hashtbl.find_opt st.spaces id with
    | Some pt -> pt
    | None -> invalid_arg "Hvm: unknown address space"
  in
  (* Guest PTPs are allocated from guest memory; ownership tracked as
     the container's. *)
  let alloc_table ~level =
    Hw.Phys_mem.alloc mem ~owner:(Hw.Phys_mem.Container container_id)
      ~kind:(Hw.Phys_mem.Page_table level)
  in
  let vm_exit reason = ignore (Hw.Vmcs.vm_exit st.vmcs clock reason) in
  let platform =
    {
      Kernel_model.Platform.name = "hvm";
      clock;
      alloc_frame =
        (fun () ->
          (* The guest allocator hands out gPA frames; a fresh gfn takes
             an EPT violation (charged) on first touch.  Recycled gfns
             keep their second-stage mapping — no exit. *)
          let gfn = alloc_gfn () in
          ept_fault_service st gfn;
          gfn);
      free_frame = (fun gfn -> st.free_gfns <- gfn :: st.free_gfns);
      as_create =
        (fun () ->
          let id = st.next_as in
          st.next_as <- id + 1;
          let root = alloc_table ~level:4 in
          Hashtbl.replace st.spaces id (Hw.Page_table.of_root mem root);
          id);
      as_destroy = (fun id -> Hashtbl.remove st.spaces id);
      as_switch =
        (fun _ ->
          (* Guest CR3 loads are not intercepted under EPT. *)
          Hw.Clock.charge clock "cr3_switch" Hw.Cost.cr3_switch);
      pte_install =
        (fun id ~va ~pfn ~writable ~user ->
          ignore
            (Hw.Page_table.map (pt_of id) ~alloc_table ~va ~pfn
               ~flags:{ Hw.Pte.default_flags with writable; user }
               ()));
      pte_remove = (fun id ~va -> ignore (Hw.Page_table.unmap (pt_of id) va));
      pte_protect =
        (fun id ~va ~writable ->
          Hw.Page_table.update (pt_of id) va (fun e -> Hw.Pte.with_writable e writable));
      fault_round_trip =
        (fun () ->
          (* The guest-side fault entry is native (no VM exit); the EPT
             violation cost is charged by alloc_frame when the fresh
             gPA is first backed. *)
          ());
      fault_service_ns =
        (if nested then Hw.Cost.pf_handler_hvm_nst else Hw.Cost.pf_handler_hvm_bm);
      syscall_round_trip =
        (fun () -> Hw.Clock.charge clock "syscall" Hw.Cost.syscall_entry_exit);
      hypercall =
        (fun kind ->
          ignore kind;
          vm_exit Hw.Vmcs.Hypercall);
      deliver_irq =
        (fun () ->
          (* External interrupt: VM exit, host handles, re-enter with a
             virtual interrupt; the guest's EOI write is another exit.
             In a nested cloud each exit is L0-redirected. *)
          vm_exit (Hw.Vmcs.External_interrupt 33);
          Hw.Clock.charge clock "irq" Hw.Cost.irq_delivery;
          Hw.Clock.charge clock "virq_inject" Hw.Cost.virq_inject;
          vm_exit Hw.Vmcs.Msr_access (* EOI *));
      virtualized_io = true;
      (* VirtIO rings live at gPAs; the host walks the EPT to reach the
         backing host frame (second-stage translation, no exit). *)
      guest_read_word =
        (fun gfn index ->
          let hpa = Hw.Ept.translate st.ept (Hw.Addr.pa_of_pfn gfn) in
          Hw.Phys_mem.read_entry mem ~pfn:(Hw.Addr.pfn_of_pa hpa) ~index);
      guest_write_word =
        (fun gfn index v ->
          let hpa = Hw.Ept.translate st.ept (Hw.Addr.pa_of_pfn gfn) in
          Hw.Phys_mem.write_entry mem ~pfn:(Hw.Addr.pfn_of_pa hpa) ~index v);
    }
  in
  let kernel = Kernel_model.Kernel.create platform in
  {
    Backend.label = (if ept_huge then "HVM-2M-" else "HVM-") ^ Env.suffix env;
    backend_name = "hvm";
    env;
    kernel;
    platform;
    clock;
    walk_refs = Hw.Cost.walk_refs_2d;
    walk_refs_huge = Hw.Cost.walk_refs_2d_huge;
    supports_hypercall = true;
    empty_hypercall = (fun () -> vm_exit Hw.Vmcs.Hypercall);
    guest_user_kernel_isolated = true;
  }
