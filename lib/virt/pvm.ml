(* PVM: software-based virtualization (SOSP'23), the state-of-the-art
   secure container design that needs no virtualization hardware.

   The guest kernel is deprivileged to *user mode* in its own address
   space.  Consequences the model reproduces:
     - syscall redirection: user -> host kernel -> (CR3 switch) ->
       guest kernel in user mode -> handle -> host -> (CR3 switch) ->
       user.  Two extra mode switches + two extra page-table switches
       on every syscall (93 -> 336 ns).
     - shadow paging: the guest keeps gVA->gPA tables, the host keeps a
       shadow gVA->hPA table per guest process.  Guest PTE writes trap
       to the host ("VM exit"); a user page fault is intercepted by the
       host, injected into the guest, handled, and the resulting PTE
       write is folded into the shadow table — at least 6 context
       switches plus emulation work per fault.
     - process switches require a hypercall (the guest cannot load CR3
       itself), making context switching and IPC slow (Figure 11). *)

type state = {
  machine : Hw.Machine.t;
  container_id : int;
  (* Guest page tables (gVA -> gPA) and host shadow tables (gVA -> hPA),
     one pair per guest address space. *)
  guest_pts : (int, Hw.Page_table.t) Hashtbl.t;
  shadow_pts : (int, Hw.Page_table.t) Hashtbl.t;
  gpa_to_hpa : (int, int) Hashtbl.t;  (** gfn -> hfn, the VMA-backed map *)
  mutable next_gfn : int;
  mutable free_gfns : int list;
  mutable next_as : int;
  mutable shadow_syncs : int;
  mutable in_fault : bool;
      (** the next pte_install is part of a demand fault whose trap
          costs were already bundled into fault_round_trip *)
  nested : bool;
}

(* Process-wide id allocator.  [Atomic.t] so backends created from
   different domains (the planned container-sharding engine) never mint
   the same id; single-domain behaviour is unchanged. *)
let next_container_id = Atomic.make 0

let create ?(env = Env.Bare_metal) (machine : Hw.Machine.t) : Backend.t =
  let clock = Hw.Machine.clock machine in
  let nested = Env.is_nested env in
  let container_id = Atomic.fetch_and_add next_container_id 1 + 1 in
  let st =
    {
      machine;
      container_id;
      guest_pts = Hashtbl.create 8;
      shadow_pts = Hashtbl.create 8;
      gpa_to_hpa = Hashtbl.create 1024;
      next_gfn = 0;
      free_gfns = [];
      next_as = 0;
      shadow_syncs = 0;
      in_fault = false;
      nested;
    }
  in
  let mem = Hw.Machine.mem machine in
  let hypercall_cost = if nested then Hw.Cost.pvm_hypercall_nst else Hw.Cost.pvm_hypercall_bm in
  let charge_hypercall () =
    Hw.Clock.charge clock (if nested then "pvm_hypercall_nst" else "pvm_hypercall") hypercall_cost
  in
  let alloc_gfn () =
    match st.free_gfns with
    | g :: rest ->
        st.free_gfns <- rest;
        g
    | [] ->
        let g = st.next_gfn in
        st.next_gfn <- g + 1;
        g
  in
  (* Back [gfn] with a host frame if it is not yet associated. *)
  let hfn_of_gfn gfn =
    match Hashtbl.find_opt st.gpa_to_hpa gfn with
    | Some h -> h
    | None ->
        let h =
          Hw.Phys_mem.alloc mem ~owner:(Hw.Phys_mem.Container container_id) ~kind:Hw.Phys_mem.Data
        in
        Hashtbl.replace st.gpa_to_hpa gfn h;
        h
  in
  let guest_pt id = Hashtbl.find st.guest_pts id in
  let shadow_pt id = Hashtbl.find st.shadow_pts id in
  let alloc_guest_table ~level =
    Hw.Phys_mem.alloc mem ~owner:(Hw.Phys_mem.Container container_id)
      ~kind:(Hw.Phys_mem.Page_table level)
  in
  let alloc_shadow_table ~level =
    Hw.Phys_mem.alloc mem ~owner:Hw.Phys_mem.Host ~kind:(Hw.Phys_mem.Page_table level)
  in
  (* Fold one guest PTE write into the shadow table: the host walks the
     guest table, translates gPA->hPA through the VMA map, and writes
     the shadow entry. *)
  let shadow_sync id ~va ~gfn ~writable ~user =
    st.shadow_syncs <- st.shadow_syncs + 1;
    Hw.Clock.count clock "shadow_sync";
    let hfn = hfn_of_gfn gfn in
    ignore
      (Hw.Page_table.map (shadow_pt id) ~alloc_table:alloc_shadow_table ~va ~pfn:hfn
         ~flags:{ Hw.Pte.default_flags with writable; user }
         ())
  in
  let platform =
    {
      Kernel_model.Platform.name = "pvm";
      clock;
      alloc_frame = (fun () -> alloc_gfn ());
      free_frame = (fun gfn -> st.free_gfns <- gfn :: st.free_gfns);
      as_create =
        (fun () ->
          let id = st.next_as in
          st.next_as <- id + 1;
          Hashtbl.replace st.guest_pts id
            (Hw.Page_table.of_root mem (alloc_guest_table ~level:4));
          Hashtbl.replace st.shadow_pts id
            (Hw.Page_table.of_root mem (alloc_shadow_table ~level:4));
          id);
      as_destroy =
        (fun id ->
          Hashtbl.remove st.guest_pts id;
          Hashtbl.remove st.shadow_pts id);
      as_switch =
        (fun _ ->
          (* The guest cannot load CR3: a hypercall asks the host to
             switch to the process's shadow table. *)
          charge_hypercall ();
          Hw.Clock.charge clock "cr3_switch" Hw.Cost.cr3_switch);
      pte_install =
        (fun id ~va ~pfn ~writable ~user ->
          (* Guest writes its own PTE (gVA->gPA): traps to the host,
             which emulates the write and syncs the shadow entry.  On
             the demand-fault path the trap costs were bundled into
             fault_round_trip; standalone updates (fork, mremap...)
             pay their own exit + emulation. *)
          if st.in_fault then st.in_fault <- false
          else begin
            charge_hypercall ();
            Hw.Clock.charge clock "shadow_emulation" 300.0
          end;
          ignore
            (Hw.Page_table.map (guest_pt id) ~alloc_table:alloc_guest_table ~va ~pfn
               ~flags:{ Hw.Pte.default_flags with writable; user }
               ());
          shadow_sync id ~va ~gfn:pfn ~writable ~user);
      pte_remove =
        (fun id ~va ->
          ignore (Hw.Page_table.unmap (guest_pt id) va);
          charge_hypercall ();
          ignore (Hw.Page_table.unmap (shadow_pt id) va));
      pte_protect =
        (fun id ~va ~writable ->
          Hw.Page_table.update (guest_pt id) va (fun e -> Hw.Pte.with_writable e writable);
          charge_hypercall ();
          Hw.Clock.charge clock "shadow_emulation" 300.0;
          match Hw.Page_table.walk (shadow_pt id) va with
          | exception Hw.Page_table.Translation_fault _ -> ()
          | _ ->
              Hw.Page_table.update (shadow_pt id) va (fun e -> Hw.Pte.with_writable e writable));
      fault_round_trip =
        (fun () ->
          (* Host intercepts the user fault, injects it into the guest
             kernel, guest handles and updates its PTE (trap), host
             emulates + syncs the shadow entry, returns: >= 6 context
             switches, bundled as the paper's two measured components. *)
          st.in_fault <- true;
          for _ = 1 to 6 do
            Hw.Clock.count clock "pvm_fault_ctx_switch"
          done;
          Hw.Clock.charge clock "pvm_fault_vmexits" Hw.Cost.pvm_fault_vmexits;
          Hw.Clock.charge clock "pvm_fault_spt" Hw.Cost.pvm_fault_spt_emulation;
          if nested then Hw.Clock.charge clock "pvm_fault_nst_extra" Hw.Cost.pvm_fault_nst_extra);
      fault_service_ns = Hw.Cost.pf_handler_pvm;
      syscall_round_trip =
        (fun () ->
          (* user -> host -> guest kernel (user mode) -> host -> user:
             native pair + 2 extra mode switches + 2 CR3 switches. *)
          Hw.Clock.charge clock "syscall" Hw.Cost.syscall_entry_exit;
          Hw.Clock.charge clock "pvm_mode_switch" (2.0 *. Hw.Cost.extra_mode_switch);
          Hw.Clock.charge clock "cr3_switch" (2.0 *. Hw.Cost.cr3_switch);
          Hw.Clock.count clock "pvm_syscall_redirect");
      hypercall =
        (fun kind ->
          charge_hypercall ();
          (* PVM runs unmodified virtio frontends: device doorbells are
             MMIO writes the host must decode and emulate. *)
          match kind with
          | Kernel_model.Platform.Net_tx | Kernel_model.Platform.Net_rx_ack
          | Kernel_model.Platform.Blk_read | Kernel_model.Platform.Blk_write ->
              Hw.Clock.charge clock "pvm_mmio_emulation" Hw.Cost.pvm_mmio_emulation
          | Kernel_model.Platform.Timer | Kernel_model.Platform.Ipi
          | Kernel_model.Platform.Console ->
              ());
      deliver_irq =
        (fun () ->
          Hw.Clock.charge clock "irq" Hw.Cost.irq_delivery;
          Hw.Clock.charge clock "virq_inject" Hw.Cost.virq_inject;
          (* EOI is a (cheap) hypercall back to the host. *)
          charge_hypercall ();
          if nested then Hw.Clock.charge clock "nested_irq_extra" Hw.Cost.nested_irq_extra);
      virtualized_io = true;
      (* VirtIO rings live at gPAs; the host reaches them through the
         gPA->hPA association (backing lazily, like any guest frame). *)
      guest_read_word =
        (fun gfn index -> Hw.Phys_mem.read_entry mem ~pfn:(hfn_of_gfn gfn) ~index);
      guest_write_word =
        (fun gfn index v -> Hw.Phys_mem.write_entry mem ~pfn:(hfn_of_gfn gfn) ~index v);
    }
  in
  let kernel = Kernel_model.Kernel.create platform in
  {
    Backend.label = "PVM-" ^ Env.suffix env;
    backend_name = "pvm";
    env;
    kernel;
    platform;
    clock;
    (* Shadow paging translates gVA->hPA in one dimension. *)
    walk_refs = Hw.Cost.walk_refs_native;
    walk_refs_huge = Hw.Cost.walk_refs_native_huge;
    supports_hypercall = true;
    empty_hypercall = charge_hypercall;
    guest_user_kernel_isolated = true;
  }
