(* The calibrated nanosecond cost model — the single source of truth for
   every latency the simulator charges.

   Anchors come from the paper's own microbenchmarks (Table 2, Figure 10,
   Section 7.1) measured on an AMD EPYC-9654:

     - RunC getpid                       =   93 ns
     - CKI  getpid                       =   90 ns
     - PVM  getpid                       =  336 ns  (+2 mode, +2 CR3 switches)
     - CKI-wo-OPT2 getpid                =  238 ns  (= 90 + 2 x 74 CR3)
     - CKI-wo-OPT3 getpid                =  153 ns  (= 90 + 2 x 31.5 PKS)
     - native page-fault service         ~ 1000 ns
     - CKI KSM calls per fault           =   77 ns  (PTE update + iret)
     - HVM EPT fault     BM / NST        = 2093 / 30881 ns
     - PVM fault VM exits + SPT emu      = 1532 + 1828 ns
     - empty hypercall HVM BM / NST      = 1088 / 6746 ns
     - empty hypercall PVM BM / NST      =  466 /  486 ns
     - empty hypercall CKI               =  390 ns *)

(* ------------------------------------------------------------------ *)
(* Syscall path primitives                                             *)
(* ------------------------------------------------------------------ *)

(* Hardware ring3<->ring0 crossing pair (syscall+sysret incl. swapgs). *)
let syscall_entry_exit = 87.0

(* Kernel-side work of a trivial syscall such as getpid. *)
let getpid_work = 3.0

(* Work of getpid under RunC: namespaces add a pid translation. *)
let runc_pid_ns_translation = 3.0

(* One extra user/kernel ring crossing (PVM's syscall redirection adds
   two of these on top of the native pair). *)
let extra_mode_switch = 49.0

(* A CR3 load including the TLB/PCID bookkeeping it implies. *)
let cr3_switch = 74.0

(* A PKS switch on the syscall path when sysret/swapgs must be emulated
   (wrpkrs + post-write sanity check) — CKI-wo-OPT3 pays two of these. *)
let pks_switch = 31.5

(* A full KSM call gate round trip: wrpkrs in, secure-stack switch,
   dispatch, wrpkrs out, abuse check.  No PTI/IBRS needed because only
   container-private data is mapped in the KSM (Section 3.3). *)
let ksm_call = 38.5

(* Side-channel mitigations that a host-kernel crossing must pay and a
   KSM gate avoids: PTI page-table swap + IBRS write (Section 3.3 cites
   "hundreds of CPU cycles"). *)
let pti_overhead = 110.0
let ibrs_overhead = 55.0

(* ------------------------------------------------------------------ *)
(* Page-fault path primitives (Figure 10a decomposition)               *)
(* ------------------------------------------------------------------ *)

(* Guest/native kernel demand-fault service: VMA lookup, frame alloc,
   zeroing, PTE install.  Per-backend handler figures differ slightly
   because the handler executes under different kernels/configs. *)
let pf_handler_native = 1000.0
let pf_handler_cki = 990.0
let pf_handler_pvm = 1065.0
let pf_handler_hvm_bm = 1164.0
let pf_handler_hvm_nst = 1684.0

(* HVM: the EPT violation that follows a fresh gPA allocation.
   BM: one VM exit + EPT update.  NST: L0/L1 bouncing + shadow-EPT
   emulation (about 4 nested exits + SEPT work). *)
let ept_fault_bm = 2093.0
let ept_fault_nst = 30881.0

(* PVM: per-fault VM exits (redirection + SPT update round trips) and
   the shadow-paging emulation work (guest PT walk, instruction
   emulation, SPTE generation, exception injection). *)
let pvm_fault_vmexits = 1532.0
let pvm_fault_spt_emulation = 1828.0

(* Nested PVM pays slightly more per fault (Table 2: 7346 vs 6727). *)
let pvm_fault_nst_extra = 619.0

(* ------------------------------------------------------------------ *)
(* Hypercall / VM-exit primitives                                      *)
(* ------------------------------------------------------------------ *)

let vmexit_bm = 1088.0

(* Nested HVM: every L2 exit traps to L0, which resumes L1, which
   handles and traps back to L0, which resumes L2. *)
let vmexit_nst = 6746.0

let pvm_hypercall_bm = 466.0
let pvm_hypercall_nst = 486.0

(* CKI hypercall: PKS switch + full context switch (CR3, registers,
   IBRS in the host direction). *)
let cki_hypercall = 390.0

(* ------------------------------------------------------------------ *)
(* Memory system                                                       *)
(* ------------------------------------------------------------------ *)

(* One page-walk memory reference (mix of cache hits/misses). *)
let walk_mem_ref = 14.0

(* References for a 1-D (native) and 2-D (EPT) page walk: 4 levels
   native; (4+1)*(4+1)-1 = 24 for the two-dimensional walk. *)
let walk_refs_native = 4
let walk_refs_2d = 24

(* Huge (2 MiB) pages remove one level: 3 refs native, 15 refs 2-D. *)
let walk_refs_native_huge = 3
let walk_refs_2d_huge = 15

(* A TLB hit costs (effectively) nothing beyond the access itself. *)
let tlb_hit = 1.0

(* Copying / zeroing a 4 KiB page. *)
let page_zero = 250.0

(* invlpg executed by a kernel. *)
let invlpg = 120.0

(* ------------------------------------------------------------------ *)
(* Interrupts and scheduling                                           *)
(* ------------------------------------------------------------------ *)

(* Native interrupt delivery (IDT vectoring + handler entry/exit). *)
let irq_delivery = 300.0

(* Injecting a virtual interrupt into a resumed guest. *)
let virq_inject = 150.0

(* Kernel context switch between two tasks (same address space family). *)
let ctx_switch_work = 900.0

(* ------------------------------------------------------------------ *)
(* Devices (VirtIO)                                                    *)
(* ------------------------------------------------------------------ *)

(* Host-side servicing of one VirtIO queue notification. *)
let virtio_backend_service = 800.0

(* MMIO doorbell write: for HVM this is a VM exit; CKI replaces MMIO
   with hypercalls; RunC does not virtualize I/O at all. *)
let virtio_frontend_work = 200.0

(* Network wire+stack time for a small packet, one direction (client
   side / latency accounting only — overlapped for throughput). *)
let net_packet = 1500.0

(* Writing the doorbell register itself (the uncached MMIO/MSR store
   the guest performs before the exit it may or may not take). *)
let doorbell_write = 50.0

(* Reading the EVENT_IDX suppression field on the notify-or-not check
   (one cache-coherent load of the peer-written event index). *)
let event_idx_check = 5.0

(* Host block store: media + request overhead per 512-byte sector. *)
let blk_sector = 600.0

(* Inter-container software switch: per-packet lookup + enqueue on the
   destination port (the host-side vswitch fast path). *)
let switch_forward = 250.0

(* PVM's virtio frontend kicks through emulated MMIO: the exit plus
   instruction decoding/emulation work in the host. *)
let pvm_mmio_emulation = 1800.0

(* Extra cost of delivering a device interrupt to the L1 host kernel in
   a nested cloud (L0 posts it into the IaaS VM); applies to every
   backend whose host kernel is the L1 kernel (RunC/PVM/CKI).  HVM L2
   guests pay full nested VM exits instead. *)
let nested_irq_extra = 1000.0

(* ------------------------------------------------------------------ *)
(* Generic kernel work                                                 *)
(* ------------------------------------------------------------------ *)

let vfs_lookup_component = 120.0
let copy_byte = 0.03
let fork_base = 35_000.0
let execve_base = 120_000.0
let exit_base = 20_000.0
let per_pte_copy = 18.0

(* ------------------------------------------------------------------ *)
(* Container lifecycle: cold boot vs snapshot restore vs warm clone    *)
(* ------------------------------------------------------------------ *)

(* Cold-booting a guest kernel: decompress + early init + driver probe
   + rootfs mount.  Firecracker-class microVM kernels land in the
   ~125 ms range; this is what snapshot restore and warm cloning
   amortize away. *)
let guest_kernel_boot = 125_000_000.0

(* Importing one frame from a snapshot image into a freshly delegated
   segment (allocate + copy + metadata fix-up). *)
let restore_frame = 120.0

(* Installing one copy-on-write PTE to a shared template frame during a
   warm clone: refcount bump + write-protected leaf write. *)
let cow_map_pte = 25.0

(* Breaking a CoW share on first write: allocate + copy the page. *)
let cow_break_copy = page_zero
