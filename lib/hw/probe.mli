(** Hardware/monitor event probes.

    Low-overhead hook points scattered through the simulator ([Cpu],
    [Idt], [Pks], the KSM, the gates, the guest [Mm]) emit typed events
    here. Nothing is recorded unless a sink is installed — the analysis
    library's trace recorder attaches one around a scenario and lints
    the resulting event stream afterwards.

    Events carry only primitive payloads so this module sits below
    everything else in [hw] (only {!Pks}-free, {!Priv}-free data), and
    any layer may emit without dependency cycles.

    Every ring record is additionally tagged with the id of the domain
    that emitted it (word 7 of the 8-word encoding); the tagged
    accessors below expose the tag so [Analysis.Racecheck] can replay
    a merged multi-domain trace and check cross-domain accesses
    against the spawn/join happens-before order. *)

(** Which switch gate an event refers to. *)
type gate = Ksm_call_gate | Hypercall_gate | Interrupt_gate

val gate_name : gate -> string

type event =
  | Priv_exec of {
      cpu : int;
      mnemonic : string;
      destructive : bool;  (** blocked-in-guest per Table 3 *)
      pkrs : int;  (** PKRS at the attempt *)
      blocked : bool;  (** did extension E2 fault it? *)
    }
  | Wrpkrs of { cpu : int; value : int }  (** a successful PKRS write *)
  | Sysret of { cpu : int; pkrs : int; if_after : bool }  (** E3 *)
  | Iret of { cpu : int; pkrs_before : int; pkrs_after : int }  (** E4 *)
  | Gate_enter of { cpu : int; gate : gate; pkrs : int }
  | Gate_exit of { cpu : int; gate : gate; entry_pkrs : int; pkrs : int }
  | Idt_deliver of {
      cpu : int;
      vector : int;
      hardware : bool;
      pks_switch : bool;
      pkrs_before : int;
      pkrs_after : int;
    }
  | Tlb_fill of { cpu : int; pcid : int; vpn : int; level : int; pfn : int }
  | Tlb_invlpg of { cpu : int; pcid : int; vpn : int }
  | Tlb_flush_pcid of { cpu : int; pcid : int }
  | Cr3_load of { cpu : int; pcid : int; root : int }
  | Pks_denied of { key : int; write : bool }
  | Ksm_op of { container : int; op : string; ok : bool }
  | Pte_downgrade of {
      container : int;
      root : int;
      vpn : int;
      unmapped : bool;  (** true: PTE cleared; false: write-protected *)
    }
  | Container_boot of { container : int; pcid : int }
  | Mm_op of { op : string; vpn : int; pages : int }
  | Io_doorbell of { queue : string; avail_idx : int; in_flight : int }
      (** a VirtIO doorbell actually rang (suppressed kicks don't emit);
          [in_flight] = avail entries the host has not yet serviced *)
  | Io_completion of { queue : string; used_idx : int; serviced : int }
      (** a VirtIO completion interrupt was injected; [serviced] = used
          entries this injection signals *)
  | Mem_read of { mem : int; pfn : int }
      (** a {!Phys_mem} PTE/table read on memory instance [mem]; only
          emitted when {!mem_trace} is on *)
  | Mem_write of { mem : int; pfn : int }
      (** a {!Phys_mem} metadata or PTE write on memory instance [mem];
          only emitted when {!mem_trace} is on *)
  | Domain_spawn of { parent : int; child : int }
      (** happens-before edge: everything [parent] did before this
          event is ordered before everything [child] does *)
  | Domain_join of { parent : int; child : int }
      (** happens-before edge: everything [child] did is ordered
          before everything [parent] does after this event *)

val pp_event : Format.formatter -> event -> unit
val show_event : event -> string

(** {1 Int-encoded event rings}

    A flat preallocated ring of fixed-stride int-encoded event words:
    recording through a ring sink is a handful of array stores with no
    allocation, and the stream is decoded back into {!event} values
    lazily ({!ring_events}) at lint time.  Overflow drops the oldest
    record and counts it.  String payloads are interned in a per-ring
    side table. *)

type ring

val ring_create : ?capacity:int -> unit -> ring
(** Default capacity 65536 events. *)

val ring_capacity : ring -> int
val ring_length : ring -> int

val ring_dropped : ring -> int
(** Records lost to overflow. *)

val ring_clear : ring -> unit

val ring_record : ring -> event -> unit
(** Encode one boxed event into the ring, tagged with the calling
    domain's id (generic path; also the injection point for
    fault-injection tests). *)

val ring_record_tagged : ring -> dom:int -> event -> unit
(** Like {!ring_record} but with an explicit domain tag — the replay
    path for merging worker rings without losing ownership. *)

val ring_events : ring -> event list
(** Decode the live records, oldest first. *)

val ring_events_tagged : ring -> (int * event) list
(** Like {!ring_events}, each event paired with the id of the domain
    that emitted it. *)

val ring_iter : ring -> (event -> unit) -> unit
(** Decode and visit the live records, oldest first, without
    materializing the list. *)

val ring_iter_tagged : ring -> (int -> event -> unit) -> unit
(** Like {!ring_iter} with the emitting domain's id as first
    argument. *)

(** {1 Per-domain sinks}

    The installed sink is domain-local state: each domain of the
    sharded engine records into its own ring, and a recorder attached
    on one domain never observes another domain's events. *)

val active : unit -> bool
(** Cheap guard: emitters must test this before constructing an event,
    so the disabled path costs one domain-local read and no
    allocation. *)

val self_dom : unit -> int
(** The calling domain's id as cached in its sink slot (equal to
    [(Domain.self () :> int)], without the call). *)

val emit : event -> unit
(** Deliver [ev] to the calling domain's sink (no-op when none). *)

val emit_tagged : dom:int -> event -> unit
(** Deliver [ev] to the calling domain's sink, tagged as having been
    emitted by domain [dom].  Used when replaying a worker ring into
    the parent's sink: the merged stream keeps the original owners. *)

val set_sink : (event -> unit) -> unit
(** Install a callback sink (boxed events) on the calling domain.
    Replaces any previous sink. *)

val set_ring : ring -> unit
(** Install a ring sink on the calling domain. Replaces any previous
    sink. *)

val clear_sink : unit -> unit

val suspended : (unit -> 'a) -> 'a
(** [suspended f] runs [f] with no sink installed and restores the
    previous sink afterwards (even on exception). Used by the model
    checker so exploration does not flood an attached recorder. *)

(** {1 Physical-memory access tracing}

    Opt-in switch for the {!Mem_read}/{!Mem_write} stream.  Process
    global (all domains observe it), off by default: ordinary runs do
    not pay one event per PTE read.  The race checker's harness turns
    it on around a sharded run. *)

val set_mem_trace : bool -> unit
val mem_trace : unit -> bool

(** {1 Specialized hot emitters}

    The engine's steady-state emit sites: with a ring sink these write
    int words directly — no event boxing, no closure call; with no sink
    they cost the [active] guard alone. *)

val emit_tlb_fill : cpu:int -> pcid:int -> vpn:int -> level:int -> pfn:int -> unit
val emit_io_doorbell : queue:string -> avail_idx:int -> in_flight:int -> unit
val emit_io_completion : queue:string -> used_idx:int -> serviced:int -> unit
val emit_mem_read : mem:int -> pfn:int -> unit
val emit_mem_write : mem:int -> pfn:int -> unit
