(* Seeded enforcement mutants for the model checker's mutation-testing
   harness (lib/modelcheck).

   Each knob disables exactly one enforcement step of the PKS hardware
   extensions (E2/E3/E4) or of the switch gates.  The production code in
   [Cpu], [Idt] and [Cki.Gates] consults the singleton [knobs]; with
   every knob at its default the consultation is a plain field read and
   the enforced behaviour is exactly the paper's.  The mutation harness
   flips one knob at a time (scoped via [with_mutant]) and asserts that
   the bounded model checker produces a counterexample — a surviving
   mutant is a test failure, so the checker is itself checked.

   This module deliberately lives in [hw] with no dependencies so any
   layer can consult it without cycles.  Unblocked instructions are
   identified by mnemonic string (not [Priv.t]) for the same reason. *)

type knobs = {
  mutable e2_enforce : bool;
      (** E2: destructive privileged instructions fault when PKRS != 0 *)
  mutable e2_unblocked : string list;
      (** mnemonics exempted from the E2 block (policy-table mutants) *)
  mutable e3_pin_if : bool;  (** E3: sysret pins IF on when PKRS != 0 *)
  mutable e4_save_on_delivery : bool;
      (** E4: hardware delivery pushes PKRS before zeroing it *)
  mutable e4_restore_on_iret : bool;  (** E4: iret pops the saved PKRS *)
  mutable software_pks_switch : bool;
      (** forbidden: software [int] takes the PKS switch like hardware *)
  mutable gate_verify_wrpkrs : bool;
      (** Figure 8a's post-wrpkrs check in [switch_pks] *)
  mutable gate_forgery_check : bool;
      (** interrupt gate's per-vCPU accessibility check on entry *)
}

let knobs =
  {
    e2_enforce = true;
    e2_unblocked = [];
    e3_pin_if = true;
    e4_save_on_delivery = true;
    e4_restore_on_iret = true;
    software_pks_switch = false;
    gate_verify_wrpkrs = true;
    gate_forgery_check = true;
  }
[@@single_domain
  "mutation knobs are flipped only by the single-domain model-check harness under \
   [with_mutant] (pristine asserted after); a domain-sharded engine must never run the \
   mutation harness concurrently with real containers"]

let reset () =
  knobs.e2_enforce <- true;
  knobs.e2_unblocked <- [];
  knobs.e3_pin_if <- true;
  knobs.e4_save_on_delivery <- true;
  knobs.e4_restore_on_iret <- true;
  knobs.software_pks_switch <- false;
  knobs.gate_verify_wrpkrs <- true;
  knobs.gate_forgery_check <- true

let pristine () =
  knobs.e2_enforce
  && knobs.e2_unblocked = []
  && knobs.e3_pin_if
  && knobs.e4_save_on_delivery
  && knobs.e4_restore_on_iret
  && (not knobs.software_pks_switch)
  && knobs.gate_verify_wrpkrs
  && knobs.gate_forgery_check

(* E2 as actually enforced: the golden policy answer, filtered through
   the active mutant. *)
let e2_blocks ~mnemonic ~policy_blocked =
  policy_blocked && knobs.e2_enforce && not (List.mem mnemonic knobs.e2_unblocked)

let with_mutant (install : unit -> unit) (f : unit -> 'a) : 'a =
  reset ();
  install ();
  Fun.protect ~finally:reset f
