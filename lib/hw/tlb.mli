(** PCID-tagged TLB model.

    Capacity-bounded with FIFO eviction. Entries are tagged with the
    process-context id, so [invlpg] executed inside one container (one
    PCID) cannot flush another container's translations — the property
    Section 4.1 of the paper relies on to prevent cross-container TLB
    denial-of-service. *)

type entry = {
  pfn : Addr.pfn;
  flags : Pte.flags;
  level : int;  (** 1 = 4 KiB, 2 = 2 MiB *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 1536 entries. *)

val lookup : t -> pcid:int -> Addr.va -> entry option
(** Hit/miss statistics are updated; a level-2 entry covers its whole
    2 MiB range. *)

val insert : t -> pcid:int -> va:Addr.va -> entry -> unit

val invlpg : t -> pcid:int -> Addr.va -> unit
(** Drop one page's translation in one PCID only. *)

val flush_pcid : t -> pcid:int -> unit
(** Drop all translations of [pcid] (invpcid / CR3 write w/ flush). *)

val flush_all : t -> unit

val fold : t -> ('a -> pcid:int -> vpn:Addr.vpn -> entry -> 'a) -> 'a -> 'a
(** Fold over every cached translation (used by the analysis library's
    stale-entry scanner). *)

val size : t -> int
val entries_for : t -> pcid:int -> int
val hits : t -> int
val misses : t -> int
val hit_rate : t -> float
val reset_stats : t -> unit

val set_invalidate_hook : t -> (int -> int -> unit) -> unit
(** [set_invalidate_hook t hook] registers [hook pcid vpn], fired on
    every entry drop — eviction, [invlpg], [flush_pcid] ([vpn = -1]:
    all of [pcid]), [flush_all] ([pcid = -1]).  The CPU's memoized
    translation fast path registers one so its direct-mapped cache
    stays a strict subset of this TLB. *)

val note_hit : t -> unit
(** Count a hit scored by a front cache, so hit/miss statistics are
    identical whether or not the cache intercepted the lookup. *)
