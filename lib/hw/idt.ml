(* Interrupt descriptor table with the IST feature and the paper's
   PKS-switching extension.

   Each entry may request:
     - an IST stack (forces the CPU onto a known-good interrupt stack
       regardless of the interrupted RSP — Section 4.4's defence
       against interrupt-stack manipulation), and
     - pks_switch (extension E4): on *hardware* interrupt delivery the
       CPU saves PKRS and zeroes it before entering the gate, so the
       gate itself contains no wrpkrs instruction to abuse.  Software
       `int` instructions leave PKRS unchanged. *)

type entry = {
  vector : int;
  handler : string;  (** symbolic handler name (gate code lives in KSM memory) *)
  ist : int option;  (** interrupt-stack-table slot, if any *)
  pks_switch : bool;  (** extension E4 attribute *)
  user_invocable : bool;  (** DPL=3: may be raised from ring 3 (e.g. int3) *)
}

type t = {
  entries : entry option array;
  mutable base_locked : bool;  (** lidt blocked after boot: IDTR is pinned *)
}

let vectors = 256

let create () = { entries = Array.make vectors None; base_locked = false }

let set t (e : entry) =
  if e.vector < 0 || e.vector >= vectors then invalid_arg "Idt.set: bad vector";
  if t.base_locked then invalid_arg "Idt.set: IDT locked";
  t.entries.(e.vector) <- Some e

let get t vector =
  if vector < 0 || vector >= vectors then invalid_arg "Idt.get: bad vector";
  t.entries.(vector)

let lock t = t.base_locked <- true
let is_locked t = t.base_locked

type delivery = Hardware | Software

(* Deliver vector [v] to [cpu].  Returns the entry vectored through.
   Hardware delivery applies the PKS-switch extension; software `int`
   does not (so a guest cannot forge a PKRS-zeroing entry). *)
let deliver t cpu ~kind v =
  match get t v with
  | None -> invalid_arg (Printf.sprintf "Idt.deliver: vector %d not installed" v)
  | Some e ->
      let pkrs_before = cpu.Cpu.pkrs in
      (match kind with
      | Hardware -> Cpu.hw_interrupt_entry cpu ~pks_switch:e.pks_switch
      | Software ->
          if (not e.user_invocable) && cpu.Cpu.mode = Cpu.User then
            raise (Cpu.Fault (Cpu.Priv_page_violation 0))
          else if Mutation.knobs.Mutation.software_pks_switch && e.pks_switch then
            (* mutant: software vectoring wrongly takes the E4 switch *)
            Cpu.hw_interrupt_entry cpu ~pks_switch:true
          else cpu.Cpu.mode <- Cpu.Kernel);
      if Probe.active () then
        Probe.emit
          (Probe.Idt_deliver
             {
               cpu = cpu.Cpu.id;
               vector = v;
               hardware = (kind = Hardware);
               pks_switch = e.pks_switch;
               pkrs_before;
               pkrs_after = cpu.Cpu.pkrs;
             });
      e

(* Standard vectors used by the simulation. *)
let vec_page_fault = 14
let vec_gp_fault = 13
let vec_timer = 32
let vec_virtio_net = 33
let vec_virtio_blk = 34
let vec_ipi = 35
