(* Protection Keys for Supervisor pages (PKS) — and its user-mode
   sibling PKU.

   A 32-bit rights register holds 2 bits per key (16 keys):
     bit 2k   = AD (access disable)
     bit 2k+1 = WD (write disable)
   PKRS permissions apply to supervisor (U=0) pages; PKRU to user
   pages.  Key 0 with rights 0 is the "all access" state the KSM runs
   with; CKI's guest kernels run with PKRS = [pkrs_guest]. *)

type perm = Read_write | Read_only | No_access [@@deriving show { with_path = false }, eq]

let num_keys = 16

type rights = int
(** A PKRS/PKRU register value. *)

let pp_rights fmt (r : rights) = Format.fprintf fmt "%#x" r
let equal_rights (a : rights) b = a = b
let show_rights (r : rights) = Printf.sprintf "%#x" r

let all_access : rights = 0

let check_key k = if k < 0 || k >= num_keys then invalid_arg "Pks: key out of range"

(* Build a rights register from a per-key permission assignment;
   unlisted keys default to [default]. *)
let make ?(default = Read_write) assignments : rights =
  let bits_of = function Read_write -> 0 | Read_only -> 2 | No_access -> 1 in
  let r = ref 0 in
  for k = 0 to num_keys - 1 do
    let p = match List.assoc_opt k assignments with Some p -> p | None -> default in
    (match List.assoc_opt k assignments with Some _ -> check_key k | None -> ());
    r := !r lor (bits_of p lsl (2 * k))
  done;
  !r

let perm_of (r : rights) ~key =
  check_key key;
  let bits = (r lsr (2 * key)) land 3 in
  if bits land 1 <> 0 then No_access else if bits land 2 <> 0 then Read_only else Read_write

type access = Read | Write [@@deriving show { with_path = false }, eq]

(* Does [r] allow [access] on a page tagged with [key]? *)
let allows (r : rights) ~key access =
  let ok =
    match (perm_of r ~key, access) with
    | Read_write, _ -> true
    | Read_only, Read -> true
    | Read_only, Write -> false
    | No_access, _ -> false
  in
  if (not ok) && Probe.active () then
    Probe.emit (Probe.Pks_denied { key; write = access = Write });
  ok

(* ------------------------------------------------------------------ *)
(* CKI's fixed PKS domain layout within a container address space      *)
(* (Section 3.3: only two domains are needed per container, so the     *)
(* 16-key limit never constrains the number of containers).            *)
(* ------------------------------------------------------------------ *)

(* Key tagging KSM-private pages (monitor code, per-vCPU areas, IDT). *)
let pkey_ksm = 1

(* Key tagging declared page-table pages: read-only to the guest. *)
let pkey_ptp = 2

(* Key tagging ordinary guest pages. *)
let pkey_guest = 0

(* PKRS while the *guest kernel* runs: no access to KSM memory,
   read-only access to PTPs, full access to its own pages. *)
let pkrs_guest : rights =
  make [ (pkey_ksm, No_access); (pkey_ptp, Read_only); (pkey_guest, Read_write) ]

(* PKRS while the KSM runs: unrestricted. *)
let pkrs_ksm : rights = all_access
