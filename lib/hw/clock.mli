(** Simulated-time accounting.

    Every latency the simulator charges flows through a {!t}; named
    event counters record {e why} time was spent, so tests can make
    structural assertions ("a PVM page fault performs 6 context
    switches") and benches can print breakdowns. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in nanoseconds. *)

val charge : t -> string -> float -> unit
(** [charge t event ns] advances simulated time by [ns], attributed to
    [event] (occurrence count and total ns are both recorded). *)

(** {1 Pre-interned hot events}

    The engine's per-access costs are charged through fixed integer
    ids backed by flat arrays — no hashing, no allocation.  The two
    tiers feed the same counters: [occurrences t "tlb_hit"] sees
    charges made through [charge_id t id_tlb_hit]. *)

val id_tlb_hit : int
val id_tlb_miss_walk : int
val id_virtio_copy : int
val id_virtio_post : int
val id_virtio_service : int
val id_virtio_event_idx : int
val id_virtio_doorbell : int

val id_name : int -> string
(** The event name a well-known id stands for. *)

val charge_id : t -> int -> float -> unit
(** [charge t (id_name id) ns], without the hashing. *)

val count_id : t -> int -> unit

val add_into : into:t -> t -> unit
(** [add_into ~into src] folds [src]'s elapsed time and every event
    counter into [into].  The domain-sharded engine reduces per-lane
    clocks with this in a fixed lane order, so merged totals are
    deterministic. *)

val count : t -> string -> unit
(** Record an event occurrence without advancing time. *)

val advance : t -> float -> unit
(** Advance time without attributing it to a named event (pure
    application compute). *)

val occurrences : t -> string -> int
(** How many times [event] was charged/counted. *)

val spent_on : t -> string -> float
(** Total nanoseconds attributed to [event]. *)

val reset : t -> unit

val timed : t -> (unit -> 'a) -> 'a * float
(** Run a thunk and return its result with the simulated time it
    consumed. *)

val events : t -> (string * int) list
(** All (event, occurrences) pairs, sorted by name. *)

val pp : Format.formatter -> t -> unit
