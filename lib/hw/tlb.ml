(* PCID-tagged TLB model.

   Capacity-bounded with FIFO-ish eviction; entries are tagged with the
   process-context id so that `invlpg` executed inside one container
   (one PCID) cannot flush another container's entries — the property
   Section 4.1 relies on to prevent cross-container TLB DoS. *)

type entry = {
  pfn : Addr.pfn;
  flags : Pte.flags;
  level : int;  (** 1 = 4 KiB, 2 = 2 MiB *)
}

type t = {
  capacity : int;
  table : (int * Addr.vpn, entry) Hashtbl.t;
  order : (int * Addr.vpn) Queue.t;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
  mutable invalidate_hook : int -> int -> unit;
      (** [hook pcid vpn] fires on every entry drop so a software
          translation cache in front of this TLB stays a strict subset:
          [vpn = -1] means "all of [pcid]", [pcid = -1] "everything" *)
}

let create ?(capacity = 1536) () =
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    order = Queue.create ();
    hits = 0;
    misses = 0;
    flushes = 0;
    invalidate_hook = (fun _ _ -> ());
  }

let set_invalidate_hook t f = t.invalidate_hook <- f

(* Count a hit scored by a front cache (the CPU's memoized translation
   fast path) so hit/miss statistics stay identical whether or not the
   cache intercepted the lookup. *)
let note_hit t = t.hits <- t.hits + 1

let key ~pcid vpn = (pcid, vpn)

let lookup t ~pcid va =
  let vpn = Addr.vpn_of_va va in
  match Hashtbl.find_opt t.table (key ~pcid vpn) with
  | Some e ->
      t.hits <- t.hits + 1;
      Some e
  | None -> (
      (* A 2 MiB mapping covers 512 vpns; model it with an entry on the
         2 MiB-aligned vpn. *)
      match Hashtbl.find_opt t.table (key ~pcid (vpn land lnot 511)) with
      | Some e when e.level = 2 ->
          t.hits <- t.hits + 1;
          Some e
      | _ ->
          t.misses <- t.misses + 1;
          None)

let evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some ((p, v) as k) ->
      Hashtbl.remove t.table k;
      t.invalidate_hook p v

let insert t ~pcid ~va entry =
  let vpn = Addr.vpn_of_va va in
  let vpn = if entry.level = 2 then vpn land lnot 511 else vpn in
  if Hashtbl.length t.table >= t.capacity then evict_one t;
  let k = key ~pcid vpn in
  if not (Hashtbl.mem t.table k) then Queue.add k t.order
  else t.invalidate_hook pcid vpn;
  Hashtbl.replace t.table k entry

(* invlpg: drops the translation for one page in one PCID only. *)
let invlpg t ~pcid va =
  let vpn = Addr.vpn_of_va va in
  Hashtbl.remove t.table (key ~pcid vpn);
  Hashtbl.remove t.table (key ~pcid (vpn land lnot 511));
  t.invalidate_hook pcid vpn;
  t.invalidate_hook pcid (vpn land lnot 511)

(* invpcid / CR3 write with flush: drop all entries of [pcid]. *)
let flush_pcid t ~pcid =
  t.flushes <- t.flushes + 1;
  let stale = Hashtbl.fold (fun (p, v) _ acc -> if p = pcid then (p, v) :: acc else acc) t.table [] in
  List.iter (Hashtbl.remove t.table) stale;
  t.invalidate_hook pcid (-1)

let flush_all t =
  t.flushes <- t.flushes + 1;
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.invalidate_hook (-1) (-1)

(* Fold over all cached translations (scanner support: the analysis
   library re-walks the live page tables and compares). *)
let fold t f init =
  Hashtbl.fold (fun (pcid, vpn) e acc -> f acc ~pcid ~vpn e) t.table init

let size t = Hashtbl.length t.table
let entries_for t ~pcid = Hashtbl.fold (fun (p, _) _ n -> if p = pcid then n + 1 else n) t.table 0
let hits t = t.hits
let misses t = t.misses
let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.flushes <- 0
