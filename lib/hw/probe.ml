(* Hardware/monitor event probes.

   Hook points in Cpu/Idt/Pks/Ksm/Gates/Mm emit typed events here; the
   analysis library installs a sink around a scenario and lints the
   stream afterwards.

   Two sink shapes exist:

   - [Fn]: a callback receiving boxed [event] values (fault-injection
     tests, ad-hoc recorders, and the bench's pre-overhaul-equivalent
     configuration);
   - [Ring]: a flat preallocated ring of int-encoded event words.  An
     emit through one of the specialized [emit_*] entry points costs a
     handful of array stores — no allocation, no closure call — and the
     ring is decoded back into [event] values lazily at lint time.

   The installed sink is *per-domain* state held in domain-local
   storage: each domain of the sharded engine records into its own
   ring, and with no sink installed an emit site costs one DLS read
   (callers guard event construction behind [active ()]).

   Every ring record additionally carries the id of the domain that
   emitted it (word 7 of the 8-word encoding, cached in the DLS slot
   at domain init so the emit path pays one array store, not a
   [Domain.self] call).  [Analysis.Racecheck] replays a merged
   multi-domain trace and uses these tags — together with the
   [Domain_spawn]/[Domain_join] happens-before edges the sharding
   helper emits — to prove that no frame or probe-visible object was
   touched by two domains concurrently. *)

type gate = Ksm_call_gate | Hypercall_gate | Interrupt_gate

let gate_name = function
  | Ksm_call_gate -> "ksm-call"
  | Hypercall_gate -> "hypercall"
  | Interrupt_gate -> "interrupt"

type event =
  | Priv_exec of { cpu : int; mnemonic : string; destructive : bool; pkrs : int; blocked : bool }
  | Wrpkrs of { cpu : int; value : int }
  | Sysret of { cpu : int; pkrs : int; if_after : bool }
  | Iret of { cpu : int; pkrs_before : int; pkrs_after : int }
  | Gate_enter of { cpu : int; gate : gate; pkrs : int }
  | Gate_exit of { cpu : int; gate : gate; entry_pkrs : int; pkrs : int }
  | Idt_deliver of {
      cpu : int;
      vector : int;
      hardware : bool;
      pks_switch : bool;
      pkrs_before : int;
      pkrs_after : int;
    }
  | Tlb_fill of { cpu : int; pcid : int; vpn : int; level : int; pfn : int }
  | Tlb_invlpg of { cpu : int; pcid : int; vpn : int }
  | Tlb_flush_pcid of { cpu : int; pcid : int }
  | Cr3_load of { cpu : int; pcid : int; root : int }
  | Pks_denied of { key : int; write : bool }
  | Ksm_op of { container : int; op : string; ok : bool }
  | Pte_downgrade of { container : int; root : int; vpn : int; unmapped : bool }
  | Container_boot of { container : int; pcid : int }
  | Mm_op of { op : string; vpn : int; pages : int }
  | Io_doorbell of { queue : string; avail_idx : int; in_flight : int }
  | Io_completion of { queue : string; used_idx : int; serviced : int }
  | Mem_read of { mem : int; pfn : int }
  | Mem_write of { mem : int; pfn : int }
  | Domain_spawn of { parent : int; child : int }
  | Domain_join of { parent : int; child : int }

let pp_event fmt = function
  | Priv_exec { cpu; mnemonic; destructive; pkrs; blocked } ->
      Format.fprintf fmt "cpu%d priv %s%s pkrs=%#x %s" cpu mnemonic
        (if destructive then " (destructive)" else "")
        pkrs
        (if blocked then "blocked" else "executed")
  | Wrpkrs { cpu; value } -> Format.fprintf fmt "cpu%d wrpkrs %#x" cpu value
  | Sysret { cpu; pkrs; if_after } ->
      Format.fprintf fmt "cpu%d sysret pkrs=%#x if=%b" cpu pkrs if_after
  | Iret { cpu; pkrs_before; pkrs_after } ->
      Format.fprintf fmt "cpu%d iret pkrs %#x -> %#x" cpu pkrs_before pkrs_after
  | Gate_enter { cpu; gate; pkrs } ->
      Format.fprintf fmt "cpu%d enter %s gate pkrs=%#x" cpu (gate_name gate) pkrs
  | Gate_exit { cpu; gate; entry_pkrs; pkrs } ->
      Format.fprintf fmt "cpu%d exit %s gate pkrs %#x -> %#x" cpu (gate_name gate) entry_pkrs pkrs
  | Idt_deliver { cpu; vector; hardware; pks_switch; pkrs_before; pkrs_after } ->
      Format.fprintf fmt "cpu%d idt vec=%d %s pks_switch=%b pkrs %#x -> %#x" cpu vector
        (if hardware then "hw" else "sw")
        pks_switch pkrs_before pkrs_after
  | Tlb_fill { cpu; pcid; vpn; level; pfn } ->
      Format.fprintf fmt "cpu%d tlb fill pcid=%d vpn=%#x lvl=%d pfn=%d" cpu pcid vpn level pfn
  | Tlb_invlpg { cpu; pcid; vpn } ->
      Format.fprintf fmt "cpu%d invlpg pcid=%d vpn=%#x" cpu pcid vpn
  | Tlb_flush_pcid { cpu; pcid } -> Format.fprintf fmt "cpu%d tlb flush pcid=%d" cpu pcid
  | Cr3_load { cpu; pcid; root } ->
      Format.fprintf fmt "cpu%d cr3 load root=%d pcid=%d" cpu root pcid
  | Pks_denied { key; write } ->
      Format.fprintf fmt "pks denied key=%d %s" key (if write then "write" else "read")
  | Ksm_op { container; op; ok } ->
      Format.fprintf fmt "ksm[%d] %s %s" container op (if ok then "ok" else "rejected")
  | Pte_downgrade { container; root; vpn; unmapped } ->
      Format.fprintf fmt "ksm[%d] pte %s root=%d vpn=%#x" container
        (if unmapped then "unmap" else "write-protect")
        root vpn
  | Container_boot { container; pcid } ->
      Format.fprintf fmt "container %d boots with pcid=%d" container pcid
  | Mm_op { op; vpn; pages } -> Format.fprintf fmt "mm %s vpn=%#x pages=%d" op vpn pages
  | Io_doorbell { queue; avail_idx; in_flight } ->
      Format.fprintf fmt "io %s doorbell avail=%d in_flight=%d" queue avail_idx in_flight
  | Io_completion { queue; used_idx; serviced } ->
      Format.fprintf fmt "io %s completion used=%d serviced=%d" queue used_idx serviced
  | Mem_read { mem; pfn } -> Format.fprintf fmt "mem[%d] read pfn=%d" mem pfn
  | Mem_write { mem; pfn } -> Format.fprintf fmt "mem[%d] write pfn=%d" mem pfn
  | Domain_spawn { parent; child } -> Format.fprintf fmt "domain %d spawns %d" parent child
  | Domain_join { parent; child } -> Format.fprintf fmt "domain %d joins %d" parent child

let show_event e = Format.asprintf "%a" pp_event e

(* ------------------------------------------------------------------ *)
(* Int-encoded event rings                                             *)
(* ------------------------------------------------------------------ *)

(* Fixed-stride encoding: each event occupies [stride] words —
   word 0 the variant tag, words 1..6 the payload fields in declaration
   order, word 7 the emitting domain's id.  Bools encode as 0/1; the
   few string payloads (mnemonics, KSM/mm op names, queue names) are
   interned in a per-ring side table and encoded as their intern id.
   Overflow drops the *oldest* record (and counts it), matching the
   old queue recorder's semantics. *)

let stride = 8

type ring = {
  buf : int array;  (** capacity * stride event words *)
  capacity : int;  (** events *)
  mutable head : int;  (** slot index of the oldest live event *)
  mutable len : int;
  mutable dropped : int;
  mutable strings : string array;  (** intern id -> string *)
  mutable nstrings : int;
  intern : (string, int) Hashtbl.t;
  mutable last_str : string;  (** 1-entry memo over [intern], hit by [==] *)
  mutable last_id : int;
}

let ring_create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Probe.ring_create: capacity must be positive";
  {
    buf = Array.make (capacity * stride) 0;
    capacity;
    head = 0;
    len = 0;
    dropped = 0;
    strings = Array.make 16 "";
    nstrings = 0;
    intern = Hashtbl.create 16;
    last_str = "";
    last_id = -1;
  }

let ring_capacity r = r.capacity
let ring_length r = r.len
let ring_dropped r = r.dropped

let ring_clear r =
  r.head <- 0;
  r.len <- 0;
  r.dropped <- 0

let intern_slow r s =
  match Hashtbl.find_opt r.intern s with
  | Some id -> id
  | None ->
      let id = r.nstrings in
      if id >= Array.length r.strings then begin
        let bigger = Array.make (2 * Array.length r.strings) "" in
        Array.blit r.strings 0 bigger 0 id;
        r.strings <- bigger
      end;
      r.strings.(id) <- s;
      r.nstrings <- id + 1;
      Hashtbl.replace r.intern s id;
      id

(* Emit sites pass the same physical string on every event of a
   stream (queue names and op mnemonics live in their emitters'
   state), so a 1-entry physical-equality memo skips the hashtable on
   the steady state. *)
let[@inline] intern r s =
  if s == r.last_str && r.last_id >= 0 then r.last_id
  else begin
    let id = intern_slow r s in
    r.last_str <- s;
    r.last_id <- id;
    id
  end

(* Claim the next slot's word offset, dropping the oldest record when
   full.  Indices stay in [0, capacity) by conditional subtraction —
   no division on the emit path. *)
let[@inline] claim r =
  let slot =
    if r.len = r.capacity then begin
      let s = r.head in
      let h = s + 1 in
      r.head <- (if h = r.capacity then 0 else h);
      r.dropped <- r.dropped + 1;
      s
    end
    else begin
      let s = r.head + r.len in
      let s = if s >= r.capacity then s - r.capacity else s in
      r.len <- r.len + 1;
      s
    end
  in
  slot * stride

(* Variant tags (stable; the decoder below is the only reader). *)
let tag_priv_exec = 0
let tag_wrpkrs = 1
let tag_sysret = 2
let tag_iret = 3
let tag_gate_enter = 4
let tag_gate_exit = 5
let tag_idt_deliver = 6
let tag_tlb_fill = 7
let tag_tlb_invlpg = 8
let tag_tlb_flush_pcid = 9
let tag_cr3_load = 10
let tag_pks_denied = 11
let tag_ksm_op = 12
let tag_pte_downgrade = 13
let tag_container_boot = 14
let tag_mm_op = 15
let tag_io_doorbell = 16
let tag_io_completion = 17
let tag_mem_read = 18
let tag_mem_write = 19
let tag_domain_spawn = 20
let tag_domain_join = 21

let gate_code = function Ksm_call_gate -> 0 | Hypercall_gate -> 1 | Interrupt_gate -> 2
let gate_of_code = function 0 -> Ksm_call_gate | 1 -> Hypercall_gate | _ -> Interrupt_gate
let bool_code b = if b then 1 else 0

(* Every store writes the emitting domain's id into word 7: one extra
   array store on the emit path (the id is cached in the DLS slot, see
   below, so no [Domain.self] call either). *)
let[@inline] store4 r dom tag a b c =
  let o = claim r in
  let buf = r.buf in
  buf.(o) <- tag;
  buf.(o + 1) <- a;
  buf.(o + 2) <- b;
  buf.(o + 3) <- c;
  buf.(o + 7) <- dom

let[@inline] store6 r dom tag a b c d e =
  let o = claim r in
  let buf = r.buf in
  buf.(o) <- tag;
  buf.(o + 1) <- a;
  buf.(o + 2) <- b;
  buf.(o + 3) <- c;
  buf.(o + 4) <- d;
  buf.(o + 5) <- e;
  buf.(o + 7) <- dom

let[@inline] store7 r dom tag a b c d e f =
  let o = claim r in
  let buf = r.buf in
  buf.(o) <- tag;
  buf.(o + 1) <- a;
  buf.(o + 2) <- b;
  buf.(o + 3) <- c;
  buf.(o + 4) <- d;
  buf.(o + 5) <- e;
  buf.(o + 6) <- f;
  buf.(o + 7) <- dom

(* Encode one boxed event into the ring (the generic path; hot sites
   use the specialized emitters below and never box). *)
let ring_record_tagged r ~dom ev =
  match ev with
  | Priv_exec { cpu; mnemonic; destructive; pkrs; blocked } ->
      store6 r dom tag_priv_exec cpu (intern r mnemonic) (bool_code destructive) pkrs
        (bool_code blocked)
  | Wrpkrs { cpu; value } -> store4 r dom tag_wrpkrs cpu value 0
  | Sysret { cpu; pkrs; if_after } -> store4 r dom tag_sysret cpu pkrs (bool_code if_after)
  | Iret { cpu; pkrs_before; pkrs_after } -> store4 r dom tag_iret cpu pkrs_before pkrs_after
  | Gate_enter { cpu; gate; pkrs } -> store4 r dom tag_gate_enter cpu (gate_code gate) pkrs
  | Gate_exit { cpu; gate; entry_pkrs; pkrs } ->
      store6 r dom tag_gate_exit cpu (gate_code gate) entry_pkrs pkrs 0
  | Idt_deliver { cpu; vector; hardware; pks_switch; pkrs_before; pkrs_after } ->
      store7 r dom tag_idt_deliver cpu vector (bool_code hardware) (bool_code pks_switch)
        pkrs_before pkrs_after
  | Tlb_fill { cpu; pcid; vpn; level; pfn } -> store6 r dom tag_tlb_fill cpu pcid vpn level pfn
  | Tlb_invlpg { cpu; pcid; vpn } -> store4 r dom tag_tlb_invlpg cpu pcid vpn
  | Tlb_flush_pcid { cpu; pcid } -> store4 r dom tag_tlb_flush_pcid cpu pcid 0
  | Cr3_load { cpu; pcid; root } -> store4 r dom tag_cr3_load cpu pcid root
  | Pks_denied { key; write } -> store4 r dom tag_pks_denied key (bool_code write) 0
  | Ksm_op { container; op; ok } ->
      store4 r dom tag_ksm_op container (intern r op) (bool_code ok)
  | Pte_downgrade { container; root; vpn; unmapped } ->
      store6 r dom tag_pte_downgrade container root vpn (bool_code unmapped) 0
  | Container_boot { container; pcid } -> store4 r dom tag_container_boot container pcid 0
  | Mm_op { op; vpn; pages } -> store4 r dom tag_mm_op (intern r op) vpn pages
  | Io_doorbell { queue; avail_idx; in_flight } ->
      store4 r dom tag_io_doorbell (intern r queue) avail_idx in_flight
  | Io_completion { queue; used_idx; serviced } ->
      store4 r dom tag_io_completion (intern r queue) used_idx serviced
  | Mem_read { mem; pfn } -> store4 r dom tag_mem_read mem pfn 0
  | Mem_write { mem; pfn } -> store4 r dom tag_mem_write mem pfn 0
  | Domain_spawn { parent; child } -> store4 r dom tag_domain_spawn parent child 0
  | Domain_join { parent; child } -> store4 r dom tag_domain_join parent child 0

(* Word offset of the [i]-th oldest live record. *)
let[@inline] offset r i =
  let s = r.head + i in
  (if s >= r.capacity then s - r.capacity else s) * stride

(* Decode the [i]-th oldest live record back into a boxed event. *)
let decode r i =
  let o = offset r i in
  let buf = r.buf in
  let a = buf.(o + 1) and b = buf.(o + 2) and c = buf.(o + 3) in
  let d = buf.(o + 4) and e = buf.(o + 5) and f = buf.(o + 6) in
  match buf.(o) with
  | 0 ->
      Priv_exec
        { cpu = a; mnemonic = r.strings.(b); destructive = c = 1; pkrs = d; blocked = e = 1 }
  | 1 -> Wrpkrs { cpu = a; value = b }
  | 2 -> Sysret { cpu = a; pkrs = b; if_after = c = 1 }
  | 3 -> Iret { cpu = a; pkrs_before = b; pkrs_after = c }
  | 4 -> Gate_enter { cpu = a; gate = gate_of_code b; pkrs = c }
  | 5 -> Gate_exit { cpu = a; gate = gate_of_code b; entry_pkrs = c; pkrs = d }
  | 6 ->
      Idt_deliver
        {
          cpu = a;
          vector = b;
          hardware = c = 1;
          pks_switch = d = 1;
          pkrs_before = e;
          pkrs_after = f;
        }
  | 7 -> Tlb_fill { cpu = a; pcid = b; vpn = c; level = d; pfn = e }
  | 8 -> Tlb_invlpg { cpu = a; pcid = b; vpn = c }
  | 9 -> Tlb_flush_pcid { cpu = a; pcid = b }
  | 10 -> Cr3_load { cpu = a; pcid = b; root = c }
  | 11 -> Pks_denied { key = a; write = b = 1 }
  | 12 -> Ksm_op { container = a; op = r.strings.(b); ok = c = 1 }
  | 13 -> Pte_downgrade { container = a; root = b; vpn = c; unmapped = d = 1 }
  | 14 -> Container_boot { container = a; pcid = b }
  | 15 -> Mm_op { op = r.strings.(a); vpn = b; pages = c }
  | 16 -> Io_doorbell { queue = r.strings.(a); avail_idx = b; in_flight = c }
  | 17 -> Io_completion { queue = r.strings.(a); used_idx = b; serviced = c }
  | 18 -> Mem_read { mem = a; pfn = b }
  | 19 -> Mem_write { mem = a; pfn = b }
  | 20 -> Domain_spawn { parent = a; child = b }
  | 21 -> Domain_join { parent = a; child = b }
  | t -> invalid_arg (Printf.sprintf "Probe.ring: corrupt tag %d" t)

let decode_dom r i = r.buf.(offset r i + 7)
let ring_events r = List.init r.len (decode r)
let ring_events_tagged r = List.init r.len (fun i -> (decode_dom r i, decode r i))

let ring_iter r g =
  for i = 0 to r.len - 1 do
    g (decode r i)
  done

let ring_iter_tagged r g =
  for i = 0 to r.len - 1 do
    g (decode_dom r i) (decode r i)
  done

(* ------------------------------------------------------------------ *)
(* Per-domain sinks                                                    *)
(* ------------------------------------------------------------------ *)

type sink = Off | Fn of (event -> unit) | Ring of ring

(* Each domain owns its sink: the sharded engine gives every worker
   domain its own ring, and a recorder attached on one domain never
   observes (or races with) another domain's events.  The slot also
   caches the owning domain's id (as an int), established once per
   domain — the tagging store on the emit path reads this field
   instead of calling [Domain.self]. *)
type slot = { mutable sink : sink; dom : int }

let sink_key : slot Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { sink = Off; dom = (Domain.self () :> int) })

let current () = Domain.DLS.get sink_key
let self_dom () = (current ()).dom

let active () = match (current ()).sink with Off -> false | Fn _ | Ring _ -> true

let emit ev =
  let st = current () in
  match st.sink with Off -> () | Fn f -> f ev | Ring r -> ring_record_tagged r ~dom:st.dom ev

(* Replay path: deliver [ev] to the calling domain's sink but tag it
   as having been emitted by domain [dom] — merging a worker ring into
   the parent's sink must preserve the original owners or the race
   checker would see every access as the parent's. *)
let emit_tagged ~dom ev =
  match (current ()).sink with
  | Off -> ()
  | Fn f -> f ev
  | Ring r -> ring_record_tagged r ~dom ev

let ring_record r ev = ring_record_tagged r ~dom:(self_dom ()) ev
let set_sink f = (current ()).sink <- Fn f
let set_ring r = (current ()).sink <- Ring r
let clear_sink () = (current ()).sink <- Off

(* Run [f] with no sink installed, restoring the previous one after —
   the model checker's state-space exploration replays millions of
   probe-instrumented transitions and must not flood a recorder the
   surrounding scenario attached. *)
let suspended f =
  let st = current () in
  let saved = st.sink in
  st.sink <- Off;
  Fun.protect ~finally:(fun () -> st.sink <- saved) f

(* ------------------------------------------------------------------ *)
(* Physical-memory access tracing                                      *)
(* ------------------------------------------------------------------ *)

(* Opt-in switch for the [Mem_read]/[Mem_write] stream: the flag is a
   process-global atomic (not DLS — worker domains spawned after the
   parent enabled tracing must observe it) read once per [Phys_mem]
   accessor.  Off by default so ordinary [--check] runs don't flood
   their recorders with one event per PTE read. *)
let mem_trace_flag = Atomic.make false
let set_mem_trace v = Atomic.set mem_trace_flag v
let mem_trace () = Atomic.get mem_trace_flag

(* ------------------------------------------------------------------ *)
(* Specialized hot emitters                                            *)
(* ------------------------------------------------------------------ *)

(* The engine's steady-state emit sites: with a ring sink installed
   these are a tag dispatch plus a handful of int stores — no event
   boxing, no closure call.  The [Fn] arm boxes, matching [emit]. *)

let emit_tlb_fill ~cpu ~pcid ~vpn ~level ~pfn =
  let st = current () in
  match st.sink with
  | Off -> ()
  | Ring r -> store6 r st.dom tag_tlb_fill cpu pcid vpn level pfn
  | Fn f -> f (Tlb_fill { cpu; pcid; vpn; level; pfn })

let emit_io_doorbell ~queue ~avail_idx ~in_flight =
  let st = current () in
  match st.sink with
  | Off -> ()
  | Ring r -> store4 r st.dom tag_io_doorbell (intern r queue) avail_idx in_flight
  | Fn f -> f (Io_doorbell { queue; avail_idx; in_flight })

let emit_io_completion ~queue ~used_idx ~serviced =
  let st = current () in
  match st.sink with
  | Off -> ()
  | Ring r -> store4 r st.dom tag_io_completion (intern r queue) used_idx serviced
  | Fn f -> f (Io_completion { queue; used_idx; serviced })

let emit_mem_read ~mem ~pfn =
  let st = current () in
  match st.sink with
  | Off -> ()
  | Ring r -> store4 r st.dom tag_mem_read mem pfn 0
  | Fn f -> f (Mem_read { mem; pfn })

let emit_mem_write ~mem ~pfn =
  let st = current () in
  match st.sink with
  | Off -> ()
  | Ring r -> store4 r st.dom tag_mem_write mem pfn 0
  | Fn f -> f (Mem_write { mem; pfn })
