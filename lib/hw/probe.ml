(* Hardware/monitor event probes.

   Hook points in Cpu/Idt/Pks/Ksm/Gates/Mm emit typed events here; the
   analysis library installs a sink (a ring-buffer recorder) around a
   scenario and lints the stream afterwards.  With no sink installed an
   emit site costs one ref read and performs no allocation (callers
   guard event construction behind [active ()]). *)

type gate = Ksm_call_gate | Hypercall_gate | Interrupt_gate

let gate_name = function
  | Ksm_call_gate -> "ksm-call"
  | Hypercall_gate -> "hypercall"
  | Interrupt_gate -> "interrupt"

type event =
  | Priv_exec of { cpu : int; mnemonic : string; destructive : bool; pkrs : int; blocked : bool }
  | Wrpkrs of { cpu : int; value : int }
  | Sysret of { cpu : int; pkrs : int; if_after : bool }
  | Iret of { cpu : int; pkrs_before : int; pkrs_after : int }
  | Gate_enter of { cpu : int; gate : gate; pkrs : int }
  | Gate_exit of { cpu : int; gate : gate; entry_pkrs : int; pkrs : int }
  | Idt_deliver of {
      cpu : int;
      vector : int;
      hardware : bool;
      pks_switch : bool;
      pkrs_before : int;
      pkrs_after : int;
    }
  | Tlb_fill of { cpu : int; pcid : int; vpn : int; level : int; pfn : int }
  | Tlb_invlpg of { cpu : int; pcid : int; vpn : int }
  | Tlb_flush_pcid of { cpu : int; pcid : int }
  | Cr3_load of { cpu : int; pcid : int; root : int }
  | Pks_denied of { key : int; write : bool }
  | Ksm_op of { container : int; op : string; ok : bool }
  | Pte_downgrade of { container : int; root : int; vpn : int; unmapped : bool }
  | Container_boot of { container : int; pcid : int }
  | Mm_op of { op : string; vpn : int; pages : int }
  | Io_doorbell of { queue : string; avail_idx : int; in_flight : int }
  | Io_completion of { queue : string; used_idx : int; serviced : int }

let pp_event fmt = function
  | Priv_exec { cpu; mnemonic; destructive; pkrs; blocked } ->
      Format.fprintf fmt "cpu%d priv %s%s pkrs=%#x %s" cpu mnemonic
        (if destructive then " (destructive)" else "")
        pkrs
        (if blocked then "blocked" else "executed")
  | Wrpkrs { cpu; value } -> Format.fprintf fmt "cpu%d wrpkrs %#x" cpu value
  | Sysret { cpu; pkrs; if_after } ->
      Format.fprintf fmt "cpu%d sysret pkrs=%#x if=%b" cpu pkrs if_after
  | Iret { cpu; pkrs_before; pkrs_after } ->
      Format.fprintf fmt "cpu%d iret pkrs %#x -> %#x" cpu pkrs_before pkrs_after
  | Gate_enter { cpu; gate; pkrs } ->
      Format.fprintf fmt "cpu%d enter %s gate pkrs=%#x" cpu (gate_name gate) pkrs
  | Gate_exit { cpu; gate; entry_pkrs; pkrs } ->
      Format.fprintf fmt "cpu%d exit %s gate pkrs %#x -> %#x" cpu (gate_name gate) entry_pkrs pkrs
  | Idt_deliver { cpu; vector; hardware; pks_switch; pkrs_before; pkrs_after } ->
      Format.fprintf fmt "cpu%d idt vec=%d %s pks_switch=%b pkrs %#x -> %#x" cpu vector
        (if hardware then "hw" else "sw")
        pks_switch pkrs_before pkrs_after
  | Tlb_fill { cpu; pcid; vpn; level; pfn } ->
      Format.fprintf fmt "cpu%d tlb fill pcid=%d vpn=%#x lvl=%d pfn=%d" cpu pcid vpn level pfn
  | Tlb_invlpg { cpu; pcid; vpn } ->
      Format.fprintf fmt "cpu%d invlpg pcid=%d vpn=%#x" cpu pcid vpn
  | Tlb_flush_pcid { cpu; pcid } -> Format.fprintf fmt "cpu%d tlb flush pcid=%d" cpu pcid
  | Cr3_load { cpu; pcid; root } ->
      Format.fprintf fmt "cpu%d cr3 load root=%d pcid=%d" cpu root pcid
  | Pks_denied { key; write } ->
      Format.fprintf fmt "pks denied key=%d %s" key (if write then "write" else "read")
  | Ksm_op { container; op; ok } ->
      Format.fprintf fmt "ksm[%d] %s %s" container op (if ok then "ok" else "rejected")
  | Pte_downgrade { container; root; vpn; unmapped } ->
      Format.fprintf fmt "ksm[%d] pte %s root=%d vpn=%#x" container
        (if unmapped then "unmap" else "write-protect")
        root vpn
  | Container_boot { container; pcid } ->
      Format.fprintf fmt "container %d boots with pcid=%d" container pcid
  | Mm_op { op; vpn; pages } -> Format.fprintf fmt "mm %s vpn=%#x pages=%d" op vpn pages
  | Io_doorbell { queue; avail_idx; in_flight } ->
      Format.fprintf fmt "io %s doorbell avail=%d in_flight=%d" queue avail_idx in_flight
  | Io_completion { queue; used_idx; serviced } ->
      Format.fprintf fmt "io %s completion used=%d serviced=%d" queue used_idx serviced

let show_event e = Format.asprintf "%a" pp_event e

(* The installed sink is deliberately process-global, *single-domain*
   state: exactly one recorder (the analysis library's) is attached
   around a scenario, and emit sites pay one unsynchronized ref read
   when disabled.  A domain-sharded engine must give each domain its
   own recorder before sharing this module (ROADMAP: raw-speed engine
   overhaul); the annotation below records that decision for the
   srclint domain-safety rule. *)
let sink : (event -> unit) option ref = ref None
[@@single_domain
  "one probe sink, installed by the single-domain analysis recorder; per-domain sinks are a \
   prerequisite of the domain-sharding engine overhaul"]

let active () = match !sink with None -> false | Some _ -> true
let emit ev = match !sink with None -> () | Some f -> f ev
let set_sink f = sink := Some f
let clear_sink () = sink := None

(* Run [f] with no sink installed, restoring the previous one after —
   the model checker's state-space exploration replays millions of
   probe-instrumented transitions and must not flood a recorder the
   surrounding scenario attached. *)
let suspended f =
  let saved = !sink in
  sink := None;
  Fun.protect ~finally:(fun () -> sink := saved) f
