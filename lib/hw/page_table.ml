(* 4-level page tables stored in simulated physical frames.

   All mutation goes through this module so that owners (the raw host
   kernel, or the KSM on behalf of a guest) can be charged costs and
   security checks can observe every PTE write.  The walker returns the
   number of memory references it made so the TLB-miss cost model is
   structural rather than assumed. *)

type t = {
  mem : Phys_mem.t;
  root : Addr.pfn;  (** top-level (level-4) table frame *)
}

exception Translation_fault of { va : Addr.va; level : int }

let create mem ~owner =
  let root = Phys_mem.alloc mem ~owner ~kind:(Phys_mem.Page_table 4) in
  ignore (Phys_mem.table_entries mem root);
  { mem; root }

let of_root mem root = { mem; root }
let root t = t.root

(* Read the entry for [va] at [lvl] given the table frame at that level. *)
let entry_at t ~table_pfn ~lvl va =
  Phys_mem.read_entry t.mem ~pfn:table_pfn ~index:(Addr.index_at_level ~lvl va)

let write_at t ~table_pfn ~lvl va e =
  Phys_mem.write_entry t.mem ~pfn:table_pfn ~index:(Addr.index_at_level ~lvl va) e

type walk_result = {
  pte : Pte.t;  (** the leaf entry *)
  leaf_level : int;  (** 1 for 4 KiB mappings, 2 for 2 MiB huge pages *)
  refs : int;  (** memory references performed by the walk *)
  trail : (int * Addr.pfn) list;  (** (level, table frame) visited, top first *)
}

(* Walk without side effects.  Raises [Translation_fault] when an
   intermediate or leaf entry is not present. *)
let walk t va =
  let rec go lvl table_pfn refs trail =
    let e = entry_at t ~table_pfn ~lvl va in
    let refs = refs + 1 in
    let trail = (lvl, table_pfn) :: trail in
    if not (Pte.is_present e) then raise (Translation_fault { va; level = lvl })
    else if lvl = 1 then { pte = e; leaf_level = 1; refs; trail = List.rev trail }
    else if lvl = 2 && Pte.is_huge e then { pte = e; leaf_level = 2; refs; trail = List.rev trail }
    else go (lvl - 1) (Pte.pfn e) refs trail
  in
  go Addr.levels t.root 0 []

(* Trail-free leaf walk for the hot paths ([translate]/[unmap]/
   [update]): same traversal as [walk] but returns only the leaf entry
   and its containing table, allocating nothing. *)
let rec walk_leaf t va lvl table_pfn =
  let e = entry_at t ~table_pfn ~lvl va in
  if not (Pte.is_present e) then raise (Translation_fault { va; level = lvl })
  else if lvl = 1 || (lvl = 2 && Pte.is_huge e) then (e, lvl, table_pfn)
  else walk_leaf t va (lvl - 1) (Pte.pfn e)

let translate t va =
  let pte, leaf_level, _ = walk_leaf t va Addr.levels t.root in
  if leaf_level = 2 then Addr.pa_of_pfn (Pte.pfn pte) lor (va land ((1 lsl 21) - 1))
  else Addr.pa_of_pfn (Pte.pfn pte) lor Addr.page_offset va

let is_mapped t va =
  match walk_leaf t va Addr.levels t.root with
  | _ -> true
  | exception Translation_fault _ -> false

(* Ensure intermediate tables exist down to [down_to] (2 for huge-page
   leaves, 1 otherwise); returns the table frame at that level.
   [alloc_table] lets the caller control ownership/kind of new PTPs and
   observe their creation (the KSM declares them). *)
let ensure_tables t ~alloc_table ~down_to va =
  let rec go lvl table_pfn =
    if lvl = down_to then table_pfn
    else
      let e = entry_at t ~table_pfn ~lvl va in
      if Pte.is_present e then begin
        if lvl = 2 && Pte.is_huge e then invalid_arg "Page_table: splitting huge mappings unsupported";
        go (lvl - 1) (Pte.pfn e)
      end
      else begin
        let new_pfn = alloc_table ~level:(lvl - 1) in
        Phys_mem.clear_table t.mem new_pfn;
        let link = Pte.make ~pfn:new_pfn ~flags:{ Pte.default_flags with writable = true; user = true } in
        write_at t ~table_pfn ~lvl va link;
        Phys_mem.incr_ref t.mem new_pfn;
        go (lvl - 1) new_pfn
      end
  in
  go Addr.levels t.root

let default_alloc_table mem ~owner ~level =
  Phys_mem.alloc mem ~owner ~kind:(Phys_mem.Page_table level)

(* Map the 4 KiB page at [va] to [pfn]. *)
let map t ?(alloc_table = fun ~level -> default_alloc_table t.mem ~owner:(Phys_mem.owner t.mem t.root) ~level) ~va ~pfn ~flags () =
  if flags.Pte.huge then invalid_arg "Page_table.map: use map_huge for 2 MiB mappings";
  let leaf_table = ensure_tables t ~alloc_table ~down_to:1 va in
  let old = entry_at t ~table_pfn:leaf_table ~lvl:1 va in
  write_at t ~table_pfn:leaf_table ~lvl:1 va (Pte.make ~pfn ~flags);
  old

(* Map the 2 MiB-aligned region at [va] with a level-2 huge leaf. *)
let map_huge t ?(alloc_table = fun ~level -> default_alloc_table t.mem ~owner:(Phys_mem.owner t.mem t.root) ~level) ~va ~pfn ~flags () =
  if va land ((1 lsl 21) - 1) <> 0 then invalid_arg "Page_table.map_huge: va not 2 MiB aligned";
  let l2 = ensure_tables t ~alloc_table ~down_to:2 va in
  let old = entry_at t ~table_pfn:l2 ~lvl:2 va in
  write_at t ~table_pfn:l2 ~lvl:2 va (Pte.make ~pfn ~flags:{ flags with Pte.huge = true });
  old

let unmap t va =
  match walk_leaf t va Addr.levels t.root with
  | exception Translation_fault _ -> Pte.empty
  | pte, lvl, table_pfn ->
      write_at t ~table_pfn ~lvl va Pte.empty;
      pte

(* Update the leaf PTE for [va] in place via [f]; the page must be mapped. *)
let update t va f =
  let pte, lvl, table_pfn = walk_leaf t va Addr.levels t.root in
  write_at t ~table_pfn ~lvl va (f pte)

let set_accessed_dirty t va ~write =
  update t va (fun e -> if write then Pte.mark_dirty (Pte.mark_accessed e) else Pte.mark_accessed e)

(* Fold over all present leaf mappings. *)
let fold_leaves t f init =
  let rec go lvl table_pfn va_base acc =
    let acc = ref acc in
    for i = 0 to Addr.entries_per_table - 1 do
      let e = Phys_mem.read_entry t.mem ~pfn:table_pfn ~index:i in
      if Pte.is_present e then begin
        let va = va_base lor (i lsl (Addr.page_shift + (9 * (lvl - 1)))) in
        if lvl = 1 || (lvl = 2 && Pte.is_huge e) then acc := f !acc ~va ~pte:e ~level:lvl
        else acc := go (lvl - 1) (Pte.pfn e) va !acc
      end
    done;
    !acc
  in
  go Addr.levels t.root 0 init

let count_mappings t = fold_leaves t (fun n ~va:_ ~pte:_ ~level:_ -> n + 1) 0
