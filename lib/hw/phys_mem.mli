(** Simulated physical memory.

    Frames carry ownership + kind metadata (consulted by the KSM and
    the virtualization backends for their security checks) and, for
    page-table frames, real 512-entry runs of 64-bit PTEs, so the
    page-table walker operates on genuine in-memory structures.

    Representation: metadata lives in packed int arrays and all PTEs
    in one flat [int64] Bigarray arena ([slot * 512 + index]); free
    frames are tracked in a bitmap with a rotating next-fit hint and a
    running count, making {!alloc} and {!free_frames} effectively
    O(1). Allocation order is identical to the earlier per-frame
    scans, so snapshot images remain byte-for-byte reproducible. *)

type owner =
  | Free
  | Host  (** host kernel / hypervisor *)
  | Container of int  (** delegated to container [id] *)
  | Ksm of int  (** KSM code/data of container [id] *)

val pp_owner : Format.formatter -> owner -> unit
val show_owner : owner -> string
val equal_owner : owner -> owner -> bool

type kind =
  | Unused
  | Data
  | Page_table of int  (** page-table page at level 1..4 *)
  | Ept_table of int  (** EPT table page at level 1..4 *)
  | Ksm_code
  | Ksm_data
  | Kernel_code
  | Device

val pp_kind : Format.formatter -> kind -> unit
val show_kind : kind -> string
val equal_kind : kind -> kind -> bool

type t

exception Out_of_memory

val create : frames:int -> t
val total_frames : t -> int

val mem_id : t -> int
(** Process-unique instance id. Two shards own distinct [Phys_mem]
    values covering the same pfn range, so the race checker keys
    accesses on [(mem_id, pfn)] rather than the bare pfn. *)
val owner : t -> Addr.pfn -> owner
val kind : t -> Addr.pfn -> kind
val is_free : t -> Addr.pfn -> bool

val alloc : t -> owner:owner -> kind:kind -> Addr.pfn
(** Allocate one frame anywhere. @raise Out_of_memory when full. *)

val alloc_contiguous : t -> owner:owner -> kind:kind -> count:int -> Addr.pfn
(** First-fit allocation of [count] physically-contiguous frames — the
    hPA-segment delegation primitive, and the source of CKI's
    acknowledged fragmentation limitation.
    @raise Out_of_memory when no sufficient run exists. *)

val free : t -> Addr.pfn -> unit
(** @raise Invalid_argument on double free. *)

val free_range : t -> base:Addr.pfn -> count:int -> unit
val set_kind : t -> Addr.pfn -> kind -> unit
val set_owner : t -> Addr.pfn -> owner -> unit
val incr_ref : t -> Addr.pfn -> unit
val decr_ref : t -> Addr.pfn -> unit
val refcount : t -> Addr.pfn -> int

val set_shared_ro : t -> Addr.pfn -> bool -> unit
(** Mark/unmark a frame as CoW-shared read-only. {!free} refuses to
    release a shared frame whose refcount is still positive. *)

val is_shared_ro : t -> Addr.pfn -> bool

(** {1 Table-frame accessors}

    The frame's 512-entry slot in the shared PTE arena is acquired
    lazily the first time the frame is used as a page-table (or EPT)
    page; a slot-less frame reads as all zeros. *)

val table_entries : t -> Addr.pfn -> int64 array
(** Fresh snapshot copy of the frame's 512 entries (acquiring the
    frame's arena slot if it has none). Mutating the returned array
    does not write memory — use {!write_entry}. *)
val read_entry : t -> pfn:Addr.pfn -> index:int -> int64
val write_entry : t -> pfn:Addr.pfn -> index:int -> int64 -> unit
val clear_table : t -> Addr.pfn -> unit

val count_owned : t -> (owner -> bool) -> int
val free_frames : t -> int
