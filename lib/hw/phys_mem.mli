(** Simulated physical memory.

    Frames carry ownership + kind metadata (consulted by the KSM and
    the virtualization backends for their security checks) and, for
    page-table frames, real 512-entry arrays of 64-bit PTEs, so the
    page-table walker operates on genuine in-memory structures. *)

type owner =
  | Free
  | Host  (** host kernel / hypervisor *)
  | Container of int  (** delegated to container [id] *)
  | Ksm of int  (** KSM code/data of container [id] *)

val pp_owner : Format.formatter -> owner -> unit
val show_owner : owner -> string
val equal_owner : owner -> owner -> bool

type kind =
  | Unused
  | Data
  | Page_table of int  (** page-table page at level 1..4 *)
  | Ept_table of int  (** EPT table page at level 1..4 *)
  | Ksm_code
  | Ksm_data
  | Kernel_code
  | Device

val pp_kind : Format.formatter -> kind -> unit
val show_kind : kind -> string
val equal_kind : kind -> kind -> bool

type frame = {
  mutable owner : owner;
  mutable kind : kind;
  mutable table : int64 array option;
  mutable refcount : int;
  mutable shared_ro : bool;
      (** CoW-shared read-only (warm-clone templates): the invariant
          scanner flags any writable mapping of such a frame *)
}

type t

exception Out_of_memory

val create : frames:int -> t
val total_frames : t -> int
val frame : t -> Addr.pfn -> frame
val owner : t -> Addr.pfn -> owner
val kind : t -> Addr.pfn -> kind
val is_free : t -> Addr.pfn -> bool

val alloc : t -> owner:owner -> kind:kind -> Addr.pfn
(** Allocate one frame anywhere. @raise Out_of_memory when full. *)

val alloc_contiguous : t -> owner:owner -> kind:kind -> count:int -> Addr.pfn
(** First-fit allocation of [count] physically-contiguous frames — the
    hPA-segment delegation primitive, and the source of CKI's
    acknowledged fragmentation limitation.
    @raise Out_of_memory when no sufficient run exists. *)

val free : t -> Addr.pfn -> unit
(** @raise Invalid_argument on double free. *)

val free_range : t -> base:Addr.pfn -> count:int -> unit
val set_kind : t -> Addr.pfn -> kind -> unit
val set_owner : t -> Addr.pfn -> owner -> unit
val incr_ref : t -> Addr.pfn -> unit
val decr_ref : t -> Addr.pfn -> unit
val refcount : t -> Addr.pfn -> int

val set_shared_ro : t -> Addr.pfn -> bool -> unit
(** Mark/unmark a frame as CoW-shared read-only. {!free} refuses to
    release a shared frame whose refcount is still positive. *)

val is_shared_ro : t -> Addr.pfn -> bool

(** {1 Table-frame accessors}

    The 512-entry PTE array is allocated lazily the first time a frame
    is used as a page-table (or EPT) page. *)

val table_entries : t -> Addr.pfn -> int64 array
val read_entry : t -> pfn:Addr.pfn -> index:int -> int64
val write_entry : t -> pfn:Addr.pfn -> index:int -> int64 -> unit
val clear_table : t -> Addr.pfn -> unit

val count_owned : t -> (owner -> bool) -> int
val free_frames : t -> int
