(** Seeded enforcement mutants for the model checker's mutation-testing
    harness.

    Each knob disables exactly one enforcement step of the PKS hardware
    extensions (E2/E3/E4) or of the switch gates. Production code in
    {!Cpu}, {!Idt} and [Cki.Gates] consults the singleton {!knobs}; with
    every knob at its default the enforced behaviour is exactly the
    paper's. The mutation harness flips one knob at a time (scoped via
    {!with_mutant}) and asserts the bounded model checker kills the
    mutant. *)

type knobs = {
  mutable e2_enforce : bool;
      (** E2: destructive privileged instructions fault when PKRS != 0 *)
  mutable e2_unblocked : string list;
      (** mnemonics exempted from the E2 block (policy-table mutants) *)
  mutable e3_pin_if : bool;  (** E3: sysret pins IF on when PKRS != 0 *)
  mutable e4_save_on_delivery : bool;
      (** E4: hardware delivery pushes PKRS before zeroing it *)
  mutable e4_restore_on_iret : bool;  (** E4: iret pops the saved PKRS *)
  mutable software_pks_switch : bool;
      (** forbidden: software [int] takes the PKS switch like hardware *)
  mutable gate_verify_wrpkrs : bool;
      (** Figure 8a's post-wrpkrs check in [switch_pks] *)
  mutable gate_forgery_check : bool;
      (** interrupt gate's per-vCPU accessibility check on entry *)
}

val knobs : knobs
(** The singleton consulted by enforcement sites. All defaults encode
    the paper's behaviour. *)

val reset : unit -> unit
(** Restore every knob to its default (full enforcement). *)

val pristine : unit -> bool
(** [true] iff every knob is at its default. Tests assert this so a
    leaked mutant cannot silently weaken the rest of the suite. *)

val e2_blocks : mnemonic:string -> policy_blocked:bool -> bool
(** Whether extension E2 blocks this instruction under the active
    knobs, given the policy table's verdict [policy_blocked]. *)

val with_mutant : (unit -> unit) -> (unit -> 'a) -> 'a
(** [with_mutant install f] resets all knobs, runs [install] to flip
    the mutant's knob(s), runs [f], and restores full enforcement even
    on exception. *)
