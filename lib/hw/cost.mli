(** The calibrated nanosecond cost model — the single source of truth
    for every latency the simulator charges.

    Anchors come from the paper's own microbenchmarks (Table 2,
    Figure 10, Section 7.1) measured on an AMD EPYC-9654; see the
    implementation for the per-constant provenance notes. *)

(** {2 Syscall path primitives} *)

val syscall_entry_exit : float
(** Hardware ring3<->ring0 crossing pair (syscall+sysret incl. swapgs). *)

val getpid_work : float
(** Kernel-side work of a trivial syscall such as getpid. *)

val runc_pid_ns_translation : float
(** Extra getpid work under RunC: namespace pid translation. *)

val extra_mode_switch : float
(** One extra user/kernel ring crossing (PVM redirection pays two). *)

val cr3_switch : float
(** A CR3 load including the TLB/PCID bookkeeping it implies. *)

val pks_switch : float
(** A PKS switch on the syscall path (wrpkrs + post-write check). *)

val ksm_call : float
(** A full KSM call-gate round trip (no PTI/IBRS, Section 3.3). *)

val pti_overhead : float
(** PTI page-table swap a host-kernel crossing pays and a gate avoids. *)

val ibrs_overhead : float
(** IBRS write on the host-kernel crossing path. *)

(** {2 Page-fault path primitives (Figure 10a)} *)

val pf_handler_native : float
val pf_handler_cki : float
val pf_handler_pvm : float
val pf_handler_hvm_bm : float
val pf_handler_hvm_nst : float

val ept_fault_bm : float
(** HVM: EPT violation service, bare metal. *)

val ept_fault_nst : float
(** HVM: EPT violation in a nested cloud (shadow-EPT bouncing). *)

val pvm_fault_vmexits : float
(** PVM: per-fault VM exits (redirection + SPT update round trips). *)

val pvm_fault_spt_emulation : float
(** PVM: shadow-paging emulation work per fault. *)

val pvm_fault_nst_extra : float
(** Nested PVM per-fault surcharge (Table 2: 7346 vs 6727). *)

(** {2 Hypercall / VM-exit primitives} *)

val vmexit_bm : float
val vmexit_nst : float
val pvm_hypercall_bm : float
val pvm_hypercall_nst : float

val cki_hypercall : float
(** CKI hypercall: PKS switch + full context switch. *)

(** {2 Memory system} *)

val walk_mem_ref : float
(** One page-walk memory reference (mix of cache hits/misses). *)

val walk_refs_native : int
val walk_refs_2d : int
val walk_refs_native_huge : int
val walk_refs_2d_huge : int

val tlb_hit : float
val page_zero : float

val invlpg : float
(** invlpg executed by a kernel. *)

(** {2 Interrupts and scheduling} *)

val irq_delivery : float
(** Native interrupt delivery (IDT vectoring + handler entry/exit). *)

val virq_inject : float
(** Injecting a virtual interrupt into a resumed guest. *)

val ctx_switch_work : float
(** Kernel context switch between two tasks. *)

(** {2 Devices (VirtIO)} *)

val virtio_backend_service : float
(** Host-side servicing of one VirtIO queue notification. *)

val virtio_frontend_work : float
(** Guest-side doorbell/notify work (MMIO exit for HVM). *)

val net_packet : float
(** Network wire+stack time for a small packet, one direction. *)

val doorbell_write : float
(** The uncached doorbell register store itself. *)

val event_idx_check : float
(** EVENT_IDX suppression-field load on the notify-or-not check. *)

val blk_sector : float
(** Host block store: media + request overhead per 512-byte sector. *)

val switch_forward : float
(** Inter-container software switch, per-packet fast path. *)

val pvm_mmio_emulation : float
(** PVM virtio kick through emulated MMIO (exit + decode + emulate). *)

val nested_irq_extra : float
(** Extra cost of a device interrupt reaching the L1 host kernel. *)

(** {2 Generic kernel work} *)

val vfs_lookup_component : float
val copy_byte : float
val fork_base : float
val execve_base : float
val exit_base : float
val per_pte_copy : float

(** {2 Container lifecycle} *)

val guest_kernel_boot : float
(** Cold-booting a guest kernel (what restore/clone amortize away). *)

val restore_frame : float
(** Importing one frame from a snapshot image into a fresh segment. *)

val cow_map_pte : float
(** Installing one CoW PTE to a shared template frame during a clone. *)

val cow_break_copy : float
(** Breaking a CoW share on first write: allocate + copy the page. *)
