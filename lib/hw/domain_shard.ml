(* Shared spawn/join/merge scaffolding for the domain-sharded engines.

   [Ioplane.Serve.run] and [Fleet.Controller.run] shard independent
   lanes (containers, tenants) across OCaml domains with identical
   plumbing: one probe ring per lane when a recorder is attached, the
   caller's sink parked while lanes run, a fixed round-robin
   lane->domain assignment, and a deterministic lane-order replay of
   the per-lane streams into the caller's sink afterwards.  Keeping
   that scaffolding here means the repo has exactly ONE [Domain.spawn]
   site for the static domain-escape rule to bless — and one place to
   emit the [Probe.Domain_spawn]/[Probe.Domain_join] happens-before
   edges the dynamic race checker replays.

   Replay layout of the merged stream (what [Analysis.Racecheck]
   consumes): the caller's pre-run events, then one [Domain_spawn]
   edge per worker, then every lane ring in lane order with the
   original per-event domain tags preserved ([Probe.emit_tagged]),
   then one [Domain_join] edge per worker.  Accesses by two sibling
   workers to one object are therefore unordered (no edge between
   them) and get flagged; everything the caller does after [run]
   returns is ordered after every worker via the join edges. *)

let run ?(domains = 1) ~lanes f =
  if lanes < 0 then invalid_arg "Domain_shard.run: negative lane count";
  let want_trace = Probe.active () in
  let parent = Probe.self_dom () in
  (* One ring per lane: slot [i] is written only by whichever domain
     runs lane [i], and lanes never share a slot. *)
  let rings =
    Array.init lanes (fun _ -> if want_trace then Some (Probe.ring_create ()) else None)
      [@@domain_shared
        "per-lane ring slots are touched only by the one domain running that lane \
         (fixed round-robin assignment); the merged replay below is checked by \
         Analysis.Racecheck"]
  in
  let run_lane i =
    (match rings.(i) with Some r -> Probe.set_ring r | None -> ());
    Fun.protect
      ~finally:(fun () -> if rings.(i) <> None then Probe.clear_sink ())
      (fun () -> f i)
  in
  (* [suspended] parks the caller's sink while lanes run (an inline
     lane on this domain installs its own ring) and restores it for
     the replay below.  Workers report their domain ids so the replay
     can synthesize the spawn/join edges. *)
  let children =
    Probe.suspended (fun () ->
        if domains <= 1 then begin
          for i = 0 to lanes - 1 do
            run_lane i
          done;
          [||]
        end
        else begin
          let nworkers = min domains lanes in
          let workers =
            Array.init nworkers (fun d ->
                Domain.spawn (fun () ->
                    let i = ref d in
                    while !i < lanes do
                      run_lane !i;
                      i := !i + domains
                    done;
                    Probe.self_dom ()))
          in
          Array.map Domain.join workers
        end)
  in
  (* Deterministic merge: spawn edges, lane streams in lane order
     (owners preserved), join edges. *)
  Array.iter
    (fun child -> Probe.emit_tagged ~dom:parent (Probe.Domain_spawn { parent; child }))
    children;
  Array.iter
    (function
      | Some r -> Probe.ring_iter_tagged r (fun dom ev -> Probe.emit_tagged ~dom ev)
      | None -> ())
    rings;
  Array.iter
    (fun child -> Probe.emit_tagged ~dom:parent (Probe.Domain_join { parent; child }))
    children
