(* A simulated CPU (vCPU) with the paper's PKS hardware extensions:

   E1. `wrpkrs` — a fast, unprivileged-operand instruction writing PKRS
       (kernel mode only), replacing the MSR interface.
   E2. Destructive privileged instructions fault when executed in
       kernel mode with PKRS != 0 (Section 4.1, Table 3).
   E3. `sysret` keeps IF pinned on when PKRS != 0, so a guest kernel
       cannot return to user mode with interrupts disabled.
   E4. Hardware-interrupt delivery saves PKRS and switches it to 0 when
       the IDT entry requests it; the extended `iret` restores it
       (Section 4.4). *)

type mode = User | Kernel [@@deriving show { with_path = false }, eq]

type fault =
  | Blocked_instruction of Priv.t  (** PKS extension E2 trap *)
  | Not_kernel_mode of Priv.t  (** classic #GP: priv insn in ring 3 *)
  | Pks_violation of { va : Addr.va; key : int; access : Pks.access }
  | Smap_violation of Addr.va  (** supervisor touched user page *)
  | Priv_page_violation of Addr.va  (** user touched supervisor page *)
  | Write_violation of Addr.va
  | Nx_violation of Addr.va
  | Not_present of Addr.va
[@@deriving show { with_path = false }]

exception Fault of fault

(* Memoized translation fast path: a per-CPU direct-mapped software
   cache in front of the TLB + 4-level walk.  Slots hold the packed
   (pcid, vpn) key (+1 so 0 means empty), the target pfn, and an int of
   permission metadata, so a repeated guest access skips the TLB
   hashtable, [Pte.make] and the boxed-int64 permission checks entirely
   — while still charging the structural [tlb_hit] price and counting a
   TLB hit.  The TLB's invalidate hook keeps the cache a strict subset
   of the TLB (same invalidation events + FIFO eviction), so enabling
   it is observationally invisible to cost accounting and the
   invariant scanner. *)
let tc_size = 1024 (* slots; power of two *)

(* Packed permission metadata: bit 0 writable, bit 1 user, bit 2 nx,
   bit 3 level-2 (2 MiB leaf), bits 4..7 protection key. *)
let tc_meta_pack ~writable ~user ~nx ~level ~pkey =
  (if writable then 1 else 0)
  lor (if user then 2 else 0)
  lor (if nx then 4 else 0)
  lor (if level = 2 then 8 else 0)
  lor (pkey lsl 4)

type t = {
  id : int;
  mutable mode : mode;
  mutable cr3 : Addr.pfn;
  mutable pcid : int;
  mutable pkrs : Pks.rights;
  mutable pkru : Pks.rights;
  mutable gs_base : int;
  mutable kernel_gs_base : int;
  mutable if_flag : bool;  (** RFLAGS.IF *)
  mutable halted : bool;
  mutable saved_pkrs : Pks.rights list;  (** E4: stack of interrupt-saved PKRS *)
  tlb : Tlb.t;
  clock : Clock.t;
  tc_key : int array;  (** (vpn << 14 | pcid) + 1; 0 = empty *)
  tc_pfn : int array;
  tc_meta : int array;
  mutable tc_enabled : bool;
}

let tc_index ~pcid vpn = (vpn lxor (pcid lsl 4)) land (tc_size - 1)
let tc_pack_key ~pcid vpn = ((vpn lsl 14) lor (pcid land 0x3FFF)) + 1

let tc_invalidate t pcid vpn =
  if pcid < 0 then Array.fill t.tc_key 0 tc_size 0
  else if vpn < 0 then
    for i = 0 to tc_size - 1 do
      if t.tc_key.(i) <> 0 && (t.tc_key.(i) - 1) land 0x3FFF = pcid land 0x3FFF then
        t.tc_key.(i) <- 0
    done
  else begin
    let i = tc_index ~pcid vpn in
    if t.tc_key.(i) = tc_pack_key ~pcid vpn then t.tc_key.(i) <- 0
  end

let tc_fill t ~pcid ~vpn ~pfn ~meta =
  let i = tc_index ~pcid vpn in
  t.tc_key.(i) <- tc_pack_key ~pcid vpn;
  t.tc_pfn.(i) <- pfn;
  t.tc_meta.(i) <- meta

let set_tcache t on =
  t.tc_enabled <- on;
  if not on then Array.fill t.tc_key 0 tc_size 0

let tcache_enabled t = t.tc_enabled

let create ?(id = 0) ?(tlb_capacity = 1536) clock =
  let t =
    {
      id;
      mode = Kernel;
      cr3 = 0;
      pcid = 0;
      pkrs = Pks.all_access;
      pkru = Pks.all_access;
      gs_base = 0;
      kernel_gs_base = 0;
      if_flag = true;
      halted = false;
      saved_pkrs = [];
      tlb = Tlb.create ~capacity:tlb_capacity ();
      clock;
      tc_key = Array.make tc_size 0;
      tc_pfn = Array.make tc_size 0;
      tc_meta = Array.make tc_size 0;
      tc_enabled = true;
    }
  in
  Tlb.set_invalidate_hook t.tlb (fun pcid vpn -> tc_invalidate t pcid vpn);
  t

let in_guest_kernel t = t.mode = Kernel && t.pkrs <> Pks.all_access

(* Load CR3 (+PCID) without flushing other PCIDs' TLB entries. *)
let load_cr3 t ~root ~pcid =
  t.cr3 <- root;
  t.pcid <- pcid;
  if Probe.active () then Probe.emit (Probe.Cr3_load { cpu = t.id; pcid; root });
  Clock.charge t.clock "cr3_switch" Cost.cr3_switch

(* ------------------------------------------------------------------ *)
(* Privileged-instruction execution (extension E2)                     *)
(* ------------------------------------------------------------------ *)

let exec_priv t (inst : Priv.t) : (unit, fault) result =
  let trace ~blocked =
    if Probe.active () then
      Probe.emit
        (Probe.Priv_exec
           {
             cpu = t.id;
             mnemonic = Priv.mnemonic inst;
             destructive = Priv.blocked_in_guest inst;
             pkrs = t.pkrs;
             blocked;
           })
  in
  if t.mode <> Kernel then Error (Not_kernel_mode inst)
  else if
    t.pkrs <> Pks.all_access
    && Mutation.e2_blocks ~mnemonic:(Priv.mnemonic inst)
         ~policy_blocked:(Priv.blocked_in_guest inst)
  then begin
    trace ~blocked:true;
    Clock.count t.clock "priv_inst_blocked";
    Error (Blocked_instruction inst)
  end
  else begin
    trace ~blocked:false;
    (match inst with
    | Priv.Wrpkrs r ->
        t.pkrs <- r;
        if Probe.active () then Probe.emit (Probe.Wrpkrs { cpu = t.id; value = r })
    | Priv.Rdpkrs -> ()
    | Priv.Swapgs ->
        let g = t.gs_base in
        t.gs_base <- t.kernel_gs_base;
        t.kernel_gs_base <- g
    | Priv.Sysret ->
        t.mode <- User;
        (* E3: IF stays on when a deprivileged kernel returns. *)
        if t.pkrs <> Pks.all_access && Mutation.knobs.Mutation.e3_pin_if then t.if_flag <- true;
        if Probe.active () then
          Probe.emit (Probe.Sysret { cpu = t.id; pkrs = t.pkrs; if_after = t.if_flag })
    | Priv.Sti -> t.if_flag <- true
    | Priv.Cli -> t.if_flag <- false
    | Priv.Popf -> ()
    | Priv.Hlt -> t.halted <- true
    | Priv.Invlpg va ->
        Tlb.invlpg t.tlb ~pcid:t.pcid va;
        if Probe.active () then
          Probe.emit (Probe.Tlb_invlpg { cpu = t.id; pcid = t.pcid; vpn = Addr.vpn_of_va va });
        Clock.charge t.clock "invlpg" Cost.invlpg
    | Priv.Invpcid ->
        Tlb.flush_pcid t.tlb ~pcid:t.pcid;
        if Probe.active () then Probe.emit (Probe.Tlb_flush_pcid { cpu = t.id; pcid = t.pcid })
    | Priv.Iret -> (
        t.if_flag <- true;
        (* E4: extended iret restores the interrupt-saved PKRS. *)
        let before = t.pkrs in
        (match t.saved_pkrs with
        | [] -> ()
        | r :: rest ->
            if Mutation.knobs.Mutation.e4_restore_on_iret then t.pkrs <- r;
            t.saved_pkrs <- rest);
        if Probe.active () then
          Probe.emit (Probe.Iret { cpu = t.id; pkrs_before = before; pkrs_after = t.pkrs }))
    | Priv.Lidt | Priv.Sidt | Priv.Lgdt | Priv.Ltr | Priv.Rdmsr _ | Priv.Wrmsr _
    | Priv.Mov_from_cr _ | Priv.Mov_to_cr0 | Priv.Mov_to_cr4 | Priv.Clac | Priv.Stac
    | Priv.Smsw | Priv.In_port _ | Priv.Out_port _ ->
        ()
    | Priv.Mov_to_cr3 -> ());
    Ok ()
  end

let exec_priv_exn t inst =
  match exec_priv t inst with Ok () -> () | Error f -> raise (Fault f)

(* ------------------------------------------------------------------ *)
(* Memory access with full permission checking                         *)
(* ------------------------------------------------------------------ *)

(* Check one leaf PTE against the CPU's current mode and protection-key
   rights; returns the fault, if any. *)
let check_pte t ~va ~(access : Pks.access) ~exec (pte : Pte.t) : fault option =
  if not (Pte.is_present pte) then Some (Not_present va)
  else if t.mode = User && not (Pte.is_user pte) then Some (Priv_page_violation va)
  else if exec && Pte.is_nx pte then Some (Nx_violation va)
  else if access = Pks.Write && not (Pte.is_writable pte) && t.mode = User then Some (Write_violation va)
  else begin
    (* Protection keys apply per the page's U/K bit: PKRU governs user
       pages, PKRS governs supervisor pages.  Instruction fetches are
       not blocked by protection keys (matching real MPK). *)
    let key = Pte.pkey pte in
    let rights = if Pte.is_user pte then t.pkru else t.pkrs in
    if (not exec) && not (Pks.allows rights ~key access) then
      Some (Pks_violation { va; key; access })
    else if access = Pks.Write && not (Pte.is_writable pte) then Some (Write_violation va)
    else None
  end

(* Translate + permission-check an access through [pt], consulting this
   CPU's TLB.  Charges walk costs on TLB miss.  Returns the physical
   address. *)
(* Fast-path permission check over the packed [tc_meta] bits, mirroring
   [check_pte] decision-for-decision (cache entries are always present,
   so the present test is implied by the key match). *)
let tc_check t ~va ~(access : Pks.access) ~exec meta : fault option =
  let user = meta land 2 <> 0 in
  let writable = meta land 1 <> 0 in
  if t.mode = User && not user then Some (Priv_page_violation va)
  else if exec && meta land 4 <> 0 then Some (Nx_violation va)
  else if access = Pks.Write && not writable && t.mode = User then Some (Write_violation va)
  else begin
    let key = meta lsr 4 in
    let rights = if user then t.pkru else t.pkrs in
    if (not exec) && not (Pks.allows rights ~key access) then
      Some (Pks_violation { va; key; access })
    else if access = Pks.Write && not writable then Some (Write_violation va)
    else None
  end

let access t (pt : Page_table.t) ~va ~(access_kind : Pks.access) ?(exec = false) () : (Addr.pa, fault) result =
  let vpn = Addr.vpn_of_va va in
  (* Memoized fast path: a direct-mapped probe (exact vpn, then the
     2 MiB-aligned vpn for huge leaves) replaces the TLB hashtable
     lookup and the boxed PTE rebuild on the hot repeat-access case.
     Cost accounting and hit statistics are charged exactly as a TLB
     hit would be. *)
  let slot =
    if not t.tc_enabled then -1
    else begin
      let i = tc_index ~pcid:t.pcid vpn in
      if t.tc_key.(i) = tc_pack_key ~pcid:t.pcid vpn then i
      else begin
        let b = vpn land lnot 511 in
        let j = tc_index ~pcid:t.pcid b in
        if t.tc_key.(j) = tc_pack_key ~pcid:t.pcid b && t.tc_meta.(j) land 8 <> 0 then j
        else -1
      end
    end
  in
  if slot >= 0 then begin
    Tlb.note_hit t.tlb;
    Clock.charge_id t.clock Clock.id_tlb_hit Cost.tlb_hit;
    let meta = t.tc_meta.(slot) in
    match tc_check t ~va ~access:access_kind ~exec meta with
    | Some f -> Error f
    | None ->
        let base = Addr.pa_of_pfn t.tc_pfn.(slot) in
        let pa =
          if meta land 8 <> 0 then base lor (va land ((1 lsl 21) - 1))
          else base lor Addr.page_offset va
        in
        Ok pa
  end
  else begin
    let finish (pte : Pte.t) (level : int) =
      match check_pte t ~va ~access:access_kind ~exec pte with
      | Some f -> Error f
      | None ->
          let base = Addr.pa_of_pfn (Pte.pfn pte) in
          let pa =
            if level = 2 then base lor (va land ((1 lsl 21) - 1)) else base lor Addr.page_offset va
          in
          Ok pa
    in
    let fill_tc ~pfn ~(flags : Pte.flags) ~level =
      if t.tc_enabled then begin
        let svpn = if level = 2 then vpn land lnot 511 else vpn in
        tc_fill t ~pcid:t.pcid ~vpn:svpn ~pfn
          ~meta:
            (tc_meta_pack ~writable:flags.Pte.writable ~user:flags.Pte.user ~nx:flags.Pte.nx
               ~level ~pkey:flags.Pte.pkey)
      end
    in
    match Tlb.lookup t.tlb ~pcid:t.pcid va with
    | Some e ->
        Clock.charge_id t.clock Clock.id_tlb_hit Cost.tlb_hit;
        fill_tc ~pfn:e.Tlb.pfn ~flags:e.Tlb.flags ~level:e.Tlb.level;
        let pte = Pte.make ~pfn:e.Tlb.pfn ~flags:e.Tlb.flags in
        finish pte e.Tlb.level
    | None -> (
        match Page_table.walk pt va with
        | exception Page_table.Translation_fault _ ->
            Clock.charge_id t.clock Clock.id_tlb_miss_walk
              (float_of_int Cost.walk_refs_native *. Cost.walk_mem_ref);
            Error (Not_present va)
        | w ->
            let refs = w.Page_table.refs in
            Clock.charge_id t.clock Clock.id_tlb_miss_walk (float_of_int refs *. Cost.walk_mem_ref);
            let flags = Pte.flags_of w.pte in
            let pfn = Pte.pfn w.pte in
            Tlb.insert t.tlb ~pcid:t.pcid ~va { Tlb.pfn; flags; level = w.leaf_level };
            (* Fill after the TLB insert so a capacity eviction (or a
               replace of this very key) fired by the insert hook cannot
               clear the fresh cache line. *)
            fill_tc ~pfn ~flags ~level:w.leaf_level;
            let fvpn = if w.leaf_level = 2 then vpn land lnot 511 else vpn in
            Probe.emit_tlb_fill ~cpu:t.id ~pcid:t.pcid ~vpn:fvpn ~level:w.leaf_level ~pfn;
            finish w.pte w.leaf_level)
  end

(* ------------------------------------------------------------------ *)
(* Mode transitions                                                    *)
(* ------------------------------------------------------------------ *)

let enter_user t = t.mode <- User

(* A `syscall` instruction: ring3 -> ring0 at the IA32_STAR entry. *)
let syscall_entry t =
  assert (t.mode = User);
  t.mode <- Kernel;
  Clock.charge t.clock "syscall_entry_exit" Cost.syscall_entry_exit

(* Hardware interrupt arrival (extension E4): saves PKRS and zeroes it
   when the vectoring IDT entry carries the pks_switch attribute. *)
let hw_interrupt_entry t ~pks_switch =
  if pks_switch then begin
    if Mutation.knobs.Mutation.e4_save_on_delivery then t.saved_pkrs <- t.pkrs :: t.saved_pkrs;
    t.pkrs <- Pks.all_access
  end;
  t.mode <- Kernel;
  t.if_flag <- false

let pp fmt t =
  Format.fprintf fmt "cpu%d mode=%s cr3=%d pcid=%d pkrs=%#x if=%b" t.id
    (match t.mode with User -> "U" | Kernel -> "K")
    t.cr3 t.pcid t.pkrs t.if_flag
