(* Simulated-time accounting.

   Every latency the simulator charges flows through a [Clock.t]; event
   counters record *why* time was spent so tests can make structural
   assertions ("a PVM page fault performs 6 context switches") and the
   benches can print breakdowns.

   Two tiers of accounting:

   - the general string-keyed path ([charge]/[count]) backed by
     hashtables — fine for cold events (boots, snapshots, gate
     crossings);
   - a fast path for the engine's per-access hot events: a handful of
     well-known event names are pre-interned at fixed integer ids
     ([id_tlb_hit] &c.), charged through flat arrays ([charge_id]) with
     no hashing or boxing.  Every query ([occurrences], [spent_on],
     [events], [pp]) merges both tiers, so callers cannot observe which
     tier an event was charged through. *)

(* Well-known hot events, interned at fixed ids.  Ids are part of the
   accounting format; append only. *)
let id_tlb_hit = 0
let id_tlb_miss_walk = 1
let id_virtio_copy = 2
let id_virtio_post = 3
let id_virtio_service = 4
let id_virtio_event_idx = 5
let id_virtio_doorbell = 6
let num_ids = 7

let id_name = function
  | 0 -> "tlb_hit"
  | 1 -> "tlb_miss_walk"
  | 2 -> "virtio_copy"
  | 3 -> "virtio_post"
  | 4 -> "virtio_service"
  | 5 -> "virtio_event_idx"
  | 6 -> "virtio_doorbell"
  | _ -> invalid_arg "Clock.id_name"

type t = {
  mutable now_ns : float;
  counters : (string, int) Hashtbl.t;
  spent : (string, float) Hashtbl.t;
  id_counts : int array;  (** well-known tier, indexed by id *)
  id_spent : float array;
}

let create () =
  {
    now_ns = 0.0;
    counters = Hashtbl.create 64;
    spent = Hashtbl.create 64;
    id_counts = Array.make num_ids 0;
    id_spent = Array.make num_ids 0.0;
  }

let now t = t.now_ns

(* Charge [ns] of simulated time attributed to the pre-interned event
   [id]: two array stores, no hashing, no allocation. *)
let charge_id t id ns =
  t.now_ns <- t.now_ns +. ns;
  t.id_counts.(id) <- t.id_counts.(id) + 1;
  t.id_spent.(id) <- t.id_spent.(id) +. ns

let count_id t id = t.id_counts.(id) <- t.id_counts.(id) + 1

(* Resolve a string event name to its well-known id, if any.  Only used
   on cold paths (queries, and the string [charge] below). *)
let id_of_name = function
  | "tlb_hit" -> 0
  | "tlb_miss_walk" -> 1
  | "virtio_copy" -> 2
  | "virtio_post" -> 3
  | "virtio_service" -> 4
  | "virtio_event_idx" -> 5
  | "virtio_doorbell" -> 6
  | _ -> -1

(* Charge [ns] of simulated time attributed to [event].  Well-known
   names are redirected to the fast tier so both charge paths feed the
   same counters. *)
let charge t event ns =
  let id = id_of_name event in
  if id >= 0 then charge_id t id ns
  else begin
    t.now_ns <- t.now_ns +. ns;
    Hashtbl.replace t.counters event (1 + Option.value ~default:0 (Hashtbl.find_opt t.counters event));
    Hashtbl.replace t.spent event (ns +. Option.value ~default:0.0 (Hashtbl.find_opt t.spent event))
  end

(* Record an event occurrence without advancing time. *)
let count t event =
  let id = id_of_name event in
  if id >= 0 then count_id t id
  else
    Hashtbl.replace t.counters event (1 + Option.value ~default:0 (Hashtbl.find_opt t.counters event))

(* Advance time without attributing it to a named event (pure compute). *)
let advance t ns = t.now_ns <- t.now_ns +. ns

let occurrences t event =
  let id = id_of_name event in
  if id >= 0 then t.id_counts.(id)
  else Option.value ~default:0 (Hashtbl.find_opt t.counters event)

let spent_on t event =
  let id = id_of_name event in
  if id >= 0 then t.id_spent.(id)
  else Option.value ~default:0.0 (Hashtbl.find_opt t.spent event)

let reset t =
  t.now_ns <- 0.0;
  Hashtbl.reset t.counters;
  Hashtbl.reset t.spent;
  Array.fill t.id_counts 0 num_ids 0;
  Array.fill t.id_spent 0 num_ids 0.0

(* Run [f] and return its result together with the simulated time it
   consumed. *)
let timed t f =
  let t0 = t.now_ns in
  let r = f () in
  (r, t.now_ns -. t0)

let events t =
  let acc = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters [] in
  let acc = ref acc in
  for i = 0 to num_ids - 1 do
    if t.id_counts.(i) > 0 then acc := (id_name i, t.id_counts.(i)) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

(* Ordered reduction support for the domain-sharded engine: fold [src]'s
   elapsed time and every counter into [into].  Callers reduce per-lane
   clocks in a fixed lane order, so merged totals are deterministic
   (float additions happen in the same order every run). *)
let add_into ~into src =
  into.now_ns <- into.now_ns +. src.now_ns;
  for i = 0 to num_ids - 1 do
    into.id_counts.(i) <- into.id_counts.(i) + src.id_counts.(i);
    into.id_spent.(i) <- into.id_spent.(i) +. src.id_spent.(i)
  done;
  List.iter
    (fun (e, n) ->
      if id_of_name e < 0 then begin
        Hashtbl.replace into.counters e (n + Option.value ~default:0 (Hashtbl.find_opt into.counters e));
        let ns = Option.value ~default:0.0 (Hashtbl.find_opt src.spent e) in
        Hashtbl.replace into.spent e (ns +. Option.value ~default:0.0 (Hashtbl.find_opt into.spent e))
      end)
    (List.sort (fun (a, _) (b, _) -> String.compare a b)
       (Hashtbl.fold (fun k v acc -> (k, v) :: acc) src.counters []))

let pp fmt t =
  Format.fprintf fmt "@[<v>clock: %.0f ns@," t.now_ns;
  List.iter
    (fun (e, n) -> Format.fprintf fmt "  %-32s %8d  %12.0f ns@," e n (spent_on t e))
    (events t);
  Format.fprintf fmt "@]"
