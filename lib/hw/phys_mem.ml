(* Simulated physical memory.

   Frames carry ownership + kind metadata (which the KSM and the virt
   backends consult for their security checks) and, for page-table
   frames, real 512-entry runs of 64-bit PTEs, so the page-table
   walker operates on genuine in-"memory" structures.

   Raw-speed representation: frame metadata lives in packed int arrays
   (one int per frame per field) instead of an array of mutable
   records, and all PTEs live in one flat [int64] Bigarray arena
   addressed as [slot * 512 + index].  Table slots are acquired lazily
   the first time a frame is used as a (EPT/)page-table page and
   recycled when the frame is freed or reallocated, so the arena stays
   proportional to the number of live table pages, not to physical
   memory size.  Each slot tracks the index range actually written, so
   recycling scrubs only the dirty span — sparse tables (the common
   case) never pay a 4 KiB wipe.  Free frames are tracked in a bitmap
   (32 frames per word, so every index computation is a shift or mask)
   with a rotating next-fit hint plus a running free count, which
   makes [alloc]/[free_frames] effectively O(1) and lets
   [alloc_contiguous] skip fully-allocated or fully-free words a whole
   word at a time — while reproducing the exact allocation order of
   the previous per-frame scans, so snapshot images stay byte-for-byte
   reproducible. *)

type owner =
  | Free
  | Host  (** host kernel / hypervisor *)
  | Container of int  (** delegated to container [id] *)
  | Ksm of int  (** KSM code/data of container [id] *)
[@@deriving show { with_path = false }, eq]

type kind =
  | Unused
  | Data
  | Page_table of int  (** page-table page at level 1..4 *)
  | Ept_table of int  (** EPT table page at level 1..4 *)
  | Ksm_code
  | Ksm_data
  | Kernel_code
  | Device
[@@deriving show { with_path = false }, eq]

(* Packed encodings: [Free] must map to 0 so a zeroed array means
   "all free". *)
let encode_owner = function
  | Free -> 0
  | Host -> 1
  | Container id -> 2 lor (id lsl 2)
  | Ksm id -> 3 lor (id lsl 2)

let decode_owner c =
  match c land 3 with
  | 0 -> Free
  | 1 -> Host
  | 2 -> Container (c lsr 2)
  | _ -> Ksm (c lsr 2)

let encode_kind = function
  | Unused -> 0
  | Data -> 1
  | Ksm_code -> 2
  | Ksm_data -> 3
  | Kernel_code -> 4
  | Device -> 5
  | Page_table l -> 6 lor (l lsl 3)
  | Ept_table l -> 7 lor (l lsl 3)

let decode_kind c =
  match c land 7 with
  | 0 -> Unused
  | 1 -> Data
  | 2 -> Ksm_code
  | 3 -> Ksm_data
  | 4 -> Kernel_code
  | 5 -> Device
  | 6 -> Page_table (c lsr 3)
  | _ -> Ept_table (c lsr 3)

(* Free bitmap: 32 frames per word.  A power-of-two width keeps every
   word/bit index computation a shift or mask (no integer division on
   the allocation path); 32 rather than 62 usable bits costs one extra
   word per 1984 frames and nothing else — scanning is in pfn order
   either way, so allocation order (and with it snapshot byte
   reproducibility) is identical. *)
let bits_per_word = 32
let word_shift = 5
let bit_mask = 31
let full_word = 0xFFFFFFFF

type arena = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mem_id : int;  (** process-unique instance id; tags trace events *)
  total_frames : int;
  owner_of : int array;  (** encoded owner per frame *)
  kind_of : int array;  (** encoded kind per frame *)
  refcnt : int array;
  shared : Bytes.t;  (** 1 = CoW-shared read-only *)
  table_slot : int array;  (** frame -> arena slot, -1 = no table *)
  mutable arena : arena;  (** all table pages: [slot * 512 + index] *)
  mutable arena_slots : int;  (** arena capacity, in 512-entry slots *)
  mutable used_slots : int;  (** next never-used slot *)
  mutable free_slots : int array;  (** recycled-slot stack *)
  mutable n_free_slots : int;
  mutable dirty_lo : int array;  (** per-slot written range; [entries] = clean *)
  mutable dirty_hi : int array;  (** per-slot written range; [-1] = clean *)
  free_bits : int array;  (** bit set = frame free *)
  mutable free_count : int;
  mutable next_free : int;  (** rotating hint for the next-fit [alloc] *)
}

exception Out_of_memory

let entries = Addr.entries_per_table

(* Two lanes of the sharded engine each own a [Phys_mem] with the same
   pfn range, so a pfn alone does not identify an object — the race
   checker keys accesses on [(mem_id, pfn)].  A global atomic counter
   (the sanctioned cross-domain primitive) hands out the ids. *)
let next_mem_id = Atomic.make 0

(* Access-trace hooks: one flag read when tracing is off.  Guarded on
   [Probe.mem_trace] (the global opt-in) before the per-domain sink
   check so ordinary runs pay a single atomic load per accessor. *)
let[@inline] trace_read t pfn =
  if Probe.mem_trace () then Probe.emit_mem_read ~mem:t.mem_id ~pfn

let[@inline] trace_write t pfn =
  if Probe.mem_trace () then Probe.emit_mem_write ~mem:t.mem_id ~pfn

let word_mask t w =
  let base = w lsl word_shift in
  let valid = min bits_per_word (t.total_frames - base) in
  if valid = bits_per_word then full_word else (1 lsl valid) - 1

let create ~frames:n =
  if n <= 0 then invalid_arg "Phys_mem.create";
  let nwords = (n + bits_per_word - 1) / bits_per_word in
  let t =
    {
      mem_id = Atomic.fetch_and_add next_mem_id 1;
      total_frames = n;
      owner_of = Array.make n 0;
      kind_of = Array.make n 0;
      refcnt = Array.make n 0;
      shared = Bytes.make n '\000';
      table_slot = Array.make n (-1);
      arena = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (64 * entries);
      arena_slots = 64;
      used_slots = 0;
      free_slots = Array.make 64 0;
      n_free_slots = 0;
      dirty_lo = Array.make 64 entries;
      dirty_hi = Array.make 64 (-1);
      free_bits = Array.make nwords 0;
      free_count = n;
      next_free = 0;
    }
  in
  (* Invariant: unattached slots are fully zero, and attached slots
     are zero outside their recorded dirty range — so slot acquisition
     never has to wipe 4 KiB, only releases wipe (just) what was
     written.  A fresh Bigarray is uninitialized; establish the
     invariant here. *)
  Bigarray.Array1.fill t.arena 0L;
  for w = 0 to nwords - 1 do
    t.free_bits.(w) <- word_mask t w
  done;
  t

let total_frames t = t.total_frames
let mem_id t = t.mem_id

let check_pfn t pfn =
  if pfn < 0 || pfn >= t.total_frames then invalid_arg "Phys_mem.frame: pfn out of range"

let owner t pfn =
  check_pfn t pfn;
  decode_owner t.owner_of.(pfn)

let kind t pfn =
  check_pfn t pfn;
  decode_kind t.kind_of.(pfn)

let is_free t pfn =
  check_pfn t pfn;
  t.owner_of.(pfn) = 0

(* ------------------------------------------------------------------ *)
(* PTE arena                                                           *)
(* ------------------------------------------------------------------ *)

(* Zero a slot's written range and mark it clean (see the invariant
   established in [create]). *)
let scrub_slot t s =
  let lo = t.dirty_lo.(s) and hi = t.dirty_hi.(s) in
  if hi >= lo then begin
    Bigarray.Array1.fill (Bigarray.Array1.sub t.arena ((s * entries) + lo) (hi - lo + 1)) 0L;
    t.dirty_lo.(s) <- entries;
    t.dirty_hi.(s) <- -1
  end

let release_slot t pfn =
  let s = t.table_slot.(pfn) in
  if s >= 0 then begin
    t.table_slot.(pfn) <- -1;
    scrub_slot t s;
    if t.n_free_slots = Array.length t.free_slots then begin
      let bigger = Array.make (2 * t.n_free_slots) 0 in
      Array.blit t.free_slots 0 bigger 0 t.n_free_slots;
      t.free_slots <- bigger
    end;
    t.free_slots.(t.n_free_slots) <- s;
    t.n_free_slots <- t.n_free_slots + 1
  end

let grow_arena t =
  let cap = 2 * t.arena_slots in
  let bigger = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (cap * entries) in
  Bigarray.Array1.blit t.arena (Bigarray.Array1.sub bigger 0 (t.arena_slots * entries));
  Bigarray.Array1.fill
    (Bigarray.Array1.sub bigger (t.arena_slots * entries) ((cap - t.arena_slots) * entries))
    0L;
  let lo = Array.make cap entries and hi = Array.make cap (-1) in
  Array.blit t.dirty_lo 0 lo 0 t.arena_slots;
  Array.blit t.dirty_hi 0 hi 0 t.arena_slots;
  t.dirty_lo <- lo;
  t.dirty_hi <- hi;
  t.arena <- bigger;
  t.arena_slots <- cap

(* Acquire (lazily) this frame's table slot; recycled and fresh slots
   are already zero (the invariant), so acquisition is O(1). *)
let ensure_slot t pfn =
  let s = t.table_slot.(pfn) in
  if s >= 0 then s
  else begin
    let s =
      if t.n_free_slots > 0 then begin
        t.n_free_slots <- t.n_free_slots - 1;
        t.free_slots.(t.n_free_slots)
      end
      else begin
        if t.used_slots = t.arena_slots then grow_arena t;
        let s = t.used_slots in
        t.used_slots <- t.used_slots + 1;
        s
      end
    in
    t.table_slot.(pfn) <- s;
    s
  end

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)
(* ------------------------------------------------------------------ *)

let set_free_bit t pfn =
  let w = pfn lsr word_shift and b = pfn land bit_mask in
  t.free_bits.(w) <- t.free_bits.(w) lor (1 lsl b)

let clear_free_bit t pfn =
  let w = pfn lsr word_shift and b = pfn land bit_mask in
  t.free_bits.(w) <- t.free_bits.(w) land lnot (1 lsl b)

(* Index of the lowest set bit of a non-zero word: 5 branch-free
   narrowing steps instead of a per-bit scan. *)
let lowest_bit w =
  let i = if w land 0xFFFF <> 0 then 0 else 16 in
  let i = if (w lsr i) land 0xFF <> 0 then i else i + 8 in
  let i = if (w lsr i) land 0xF <> 0 then i else i + 4 in
  let i = if (w lsr i) land 0x3 <> 0 then i else i + 2 in
  if (w lsr i) land 1 <> 0 then i else i + 1

(* First free frame at or after [start], wrapping around — the same
   next-fit order the previous per-frame scan produced. *)
let find_free_from t start =
  if t.free_count = 0 then raise Out_of_memory;
  let nwords = Array.length t.free_bits in
  let ws = start lsr word_shift and bs = start land bit_mask in
  let m = t.free_bits.(ws) land (full_word lxor ((1 lsl bs) - 1)) in
  if m <> 0 then (ws lsl word_shift) + lowest_bit m
  else begin
    let rec scan i n =
      if n = 0 then
        (* free_count > 0, so the only remaining candidates are the
           pre-[start] bits of the starting word *)
        let m = t.free_bits.(ws) land ((1 lsl bs) - 1) in
        (ws lsl word_shift) + lowest_bit m
      else
        let w = t.free_bits.(i) in
        if w <> 0 then (i lsl word_shift) + lowest_bit w
        else scan (if i + 1 = nwords then 0 else i + 1) (n - 1)
    in
    scan (if ws + 1 = nwords then 0 else ws + 1) (nwords - 1)
  end

(* Claim one free frame: metadata reset + bitmap/count update.  Any
   stale table slot from the frame's previous life is recycled. *)
let claim t pfn ~owner ~kind =
  trace_write t pfn;
  t.owner_of.(pfn) <- encode_owner owner;
  t.kind_of.(pfn) <- encode_kind kind;
  t.refcnt.(pfn) <- 0;
  Bytes.set t.shared pfn '\000';
  release_slot t pfn;
  clear_free_bit t pfn;
  t.free_count <- t.free_count - 1

(* Allocate one frame anywhere (next-fit from the rotating hint). *)
let alloc t ~owner ~kind =
  let pfn = find_free_from t t.next_free in
  let nf = pfn + 1 in
  t.next_free <- (if nf = t.total_frames then 0 else nf);
  claim t pfn ~owner ~kind;
  pfn

(* Allocate [count] physically-contiguous frames; first-fit from frame
   0.  This is the delegation primitive CKI uses for hPA segments, and
   the source of the paper's acknowledged fragmentation limitation.
   The bitmap lets the scan skip fully-allocated and fully-free words
   62 frames at a time. *)
let alloc_contiguous t ~owner ~kind ~count =
  if count <= 0 then invalid_arg "Phys_mem.alloc_contiguous";
  let n = t.total_frames in
  let base = ref (-1) in
  let run_start = ref 0 in
  let run = ref 0 in
  let pfn = ref 0 in
  (try
     while !pfn < n do
       let w = !pfn lsr word_shift in
       let valid = min bits_per_word (n - !pfn) in
       let mask = word_mask t w in
       let word = t.free_bits.(w) in
       if word = 0 then run := 0
       else if word = mask && !run + valid < count then begin
         (* whole word free but the run still cannot complete here *)
         if !run = 0 then run_start := !pfn;
         run := !run + valid
       end
       else
         for i = 0 to valid - 1 do
           if word land (1 lsl i) <> 0 then begin
             if !run = 0 then run_start := !pfn + i;
             incr run;
             if !run = count then begin
               base := !run_start;
               raise Exit
             end
           end
           else run := 0
         done;
       pfn := !pfn + valid
     done
   with Exit -> ());
  if !base < 0 then raise Out_of_memory;
  for i = !base to !base + count - 1 do
    claim t i ~owner ~kind
  done;
  !base

let free t pfn =
  check_pfn t pfn;
  trace_write t pfn;
  if t.owner_of.(pfn) = 0 then invalid_arg "Phys_mem.free: double free";
  if Bytes.get t.shared pfn <> '\000' && t.refcnt.(pfn) > 0 then
    invalid_arg "Phys_mem.free: shared frame still referenced";
  t.owner_of.(pfn) <- 0;
  t.kind_of.(pfn) <- 0;
  t.refcnt.(pfn) <- 0;
  Bytes.set t.shared pfn '\000';
  release_slot t pfn;
  set_free_bit t pfn;
  t.free_count <- t.free_count + 1

let free_range t ~base ~count =
  for pfn = base to base + count - 1 do
    free t pfn
  done

let set_kind t pfn kind =
  check_pfn t pfn;
  trace_write t pfn;
  t.kind_of.(pfn) <- encode_kind kind

let set_owner t pfn owner =
  check_pfn t pfn;
  trace_write t pfn;
  t.owner_of.(pfn) <- encode_owner owner

let incr_ref t pfn =
  check_pfn t pfn;
  trace_write t pfn;
  t.refcnt.(pfn) <- t.refcnt.(pfn) + 1

let decr_ref t pfn =
  check_pfn t pfn;
  trace_write t pfn;
  if t.refcnt.(pfn) <= 0 then invalid_arg "Phys_mem.decr_ref: refcount underflow";
  t.refcnt.(pfn) <- t.refcnt.(pfn) - 1

let refcount t pfn =
  check_pfn t pfn;
  t.refcnt.(pfn)

let set_shared_ro t pfn v =
  check_pfn t pfn;
  trace_write t pfn;
  Bytes.set t.shared pfn (if v then '\001' else '\000')

let is_shared_ro t pfn =
  check_pfn t pfn;
  Bytes.get t.shared pfn <> '\000'

(* Table-frame accessors: the frame's 512-entry slot in the PTE arena
   is acquired lazily on first write (a slot-less frame reads as all
   zeros, exactly what a fresh slot would hold). *)
let table_entries t pfn =
  check_pfn t pfn;
  trace_read t pfn;
  let s = ensure_slot t pfn in
  Array.init entries (fun i -> Bigarray.Array1.get t.arena ((s * entries) + i))

let read_entry t ~pfn ~index =
  check_pfn t pfn;
  if index < 0 || index >= entries then invalid_arg "Phys_mem.read_entry";
  trace_read t pfn;
  let s = t.table_slot.(pfn) in
  if s < 0 then 0L else Bigarray.Array1.get t.arena ((s * entries) + index)

let write_entry t ~pfn ~index value =
  check_pfn t pfn;
  if index < 0 || index >= entries then invalid_arg "Phys_mem.write_entry";
  trace_write t pfn;
  let s = ensure_slot t pfn in
  Bigarray.Array1.set t.arena ((s * entries) + index) value;
  if index < t.dirty_lo.(s) then t.dirty_lo.(s) <- index;
  if index > t.dirty_hi.(s) then t.dirty_hi.(s) <- index

let clear_table t pfn =
  check_pfn t pfn;
  trace_write t pfn;
  let s = t.table_slot.(pfn) in
  if s >= 0 then scrub_slot t s

(* Statistics used by tests and the host memory accountant. *)
let count_owned t owner_pred =
  let c = ref 0 in
  for pfn = 0 to t.total_frames - 1 do
    if owner_pred (decode_owner t.owner_of.(pfn)) then incr c
  done;
  !c

let free_frames t = t.free_count
