(* Simulated physical memory.

   Frames carry ownership + kind metadata (which the KSM and the virt
   backends consult for their security checks) and, for page-table
   frames, real 512-entry arrays of 64-bit PTEs, so the page-table
   walker operates on genuine in-"memory" structures. *)

type owner =
  | Free
  | Host  (** host kernel / hypervisor *)
  | Container of int  (** delegated to container [id] *)
  | Ksm of int  (** KSM code/data of container [id] *)
[@@deriving show { with_path = false }, eq]

type kind =
  | Unused
  | Data
  | Page_table of int  (** page-table page at level 1..4 *)
  | Ept_table of int  (** EPT table page at level 1..4 *)
  | Ksm_code
  | Ksm_data
  | Kernel_code
  | Device
[@@deriving show { with_path = false }, eq]

type frame = {
  mutable owner : owner;
  mutable kind : kind;
  mutable table : int64 array option;  (** entries, for *_table frames *)
  mutable refcount : int;  (** times mapped as a PTP / general pin count *)
  mutable shared_ro : bool;
      (** frame is CoW-shared read-only across containers (warm-clone
          templates): any writable mapping of it is a violation *)
}

type t = {
  frames : frame array;
  total_frames : int;
  mutable next_free : int;  (** search hint for the simple allocator *)
}

exception Out_of_memory

let create ~frames:n =
  if n <= 0 then invalid_arg "Phys_mem.create";
  {
    frames =
      Array.init n (fun _ ->
          { owner = Free; kind = Unused; table = None; refcount = 0; shared_ro = false });
    total_frames = n;
    next_free = 0;
  }

let total_frames t = t.total_frames

let frame t pfn =
  if pfn < 0 || pfn >= t.total_frames then invalid_arg "Phys_mem.frame: pfn out of range";
  t.frames.(pfn)

let owner t pfn = (frame t pfn).owner
let kind t pfn = (frame t pfn).kind

let is_free t pfn = (frame t pfn).owner = Free

(* Allocate one frame anywhere. *)
let alloc t ~owner ~kind =
  let n = t.total_frames in
  let rec find i tried =
    if tried >= n then raise Out_of_memory
    else
      let pfn = (t.next_free + i) mod n in
      if t.frames.(pfn).owner = Free then pfn else find (i + 1) (tried + 1)
  in
  let pfn = find 0 0 in
  t.next_free <- (pfn + 1) mod n;
  let f = t.frames.(pfn) in
  f.owner <- owner;
  f.kind <- kind;
  f.table <- None;
  f.refcount <- 0;
  f.shared_ro <- false;
  pfn

(* Allocate [count] physically-contiguous frames; first-fit.  This is
   the delegation primitive CKI uses for hPA segments, and the source
   of the paper's acknowledged fragmentation limitation. *)
let alloc_contiguous t ~owner ~kind ~count =
  if count <= 0 then invalid_arg "Phys_mem.alloc_contiguous";
  let n = t.total_frames in
  let rec scan start =
    if start + count > n then raise Out_of_memory
    else
      let rec run i = if i >= count then count else if t.frames.(start + i).owner = Free then run (i + 1) else i in
      let ok = run 0 in
      if ok = count then start else scan (start + ok + 1)
  in
  let base = scan 0 in
  for i = base to base + count - 1 do
    let f = t.frames.(i) in
    f.owner <- owner;
    f.kind <- kind;
    f.table <- None;
    f.refcount <- 0;
    f.shared_ro <- false
  done;
  base

let free t pfn =
  let f = frame t pfn in
  if f.owner = Free then invalid_arg "Phys_mem.free: double free";
  if f.shared_ro && f.refcount > 0 then
    invalid_arg "Phys_mem.free: shared frame still referenced";
  f.owner <- Free;
  f.kind <- Unused;
  f.table <- None;
  f.refcount <- 0;
  f.shared_ro <- false

let free_range t ~base ~count =
  for pfn = base to base + count - 1 do
    free t pfn
  done

let set_kind t pfn kind = (frame t pfn).kind <- kind
let set_owner t pfn owner = (frame t pfn).owner <- owner

let incr_ref t pfn =
  let f = frame t pfn in
  f.refcount <- f.refcount + 1

let decr_ref t pfn =
  let f = frame t pfn in
  if f.refcount <= 0 then invalid_arg "Phys_mem.decr_ref: refcount underflow";
  f.refcount <- f.refcount - 1

let refcount t pfn = (frame t pfn).refcount
let set_shared_ro t pfn v = (frame t pfn).shared_ro <- v
let is_shared_ro t pfn = (frame t pfn).shared_ro

(* Table-frame accessors: the 512-entry PTE array is allocated lazily
   the first time a frame is used as a (EPT/)page-table page. *)
let table_entries t pfn =
  let f = frame t pfn in
  match f.table with
  | Some a -> a
  | None ->
      let a = Array.make Addr.entries_per_table 0L in
      f.table <- Some a;
      a

let read_entry t ~pfn ~index =
  if index < 0 || index >= Addr.entries_per_table then invalid_arg "Phys_mem.read_entry";
  (table_entries t pfn).(index)

let write_entry t ~pfn ~index value =
  if index < 0 || index >= Addr.entries_per_table then invalid_arg "Phys_mem.write_entry";
  (table_entries t pfn).(index) <- value

let clear_table t pfn = Array.fill (table_entries t pfn) 0 Addr.entries_per_table 0L

(* Statistics used by tests and the host memory accountant. *)
let count_owned t owner_pred =
  let c = ref 0 in
  Array.iter (fun f -> if owner_pred f.owner then incr c) t.frames;
  !c

let free_frames t = count_owned t (fun o -> o = Free)
