(** A simulated CPU (vCPU) with the paper's PKS hardware extensions:

    - E1: [wrpkrs] — a fast instruction writing PKRS (kernel mode only);
    - E2: destructive privileged instructions fault when executed in
      kernel mode with PKRS != 0 (Section 4.1, Table 3);
    - E3: [sysret] pins RFLAGS.IF on when PKRS != 0, so a guest kernel
      cannot return to user mode with interrupts disabled;
    - E4: hardware-interrupt delivery saves PKRS and zeroes it when the
      IDT entry requests it; the extended [iret] restores it. *)

type mode = User | Kernel

val pp_mode : Format.formatter -> mode -> unit
val show_mode : mode -> string
val equal_mode : mode -> mode -> bool

type fault =
  | Blocked_instruction of Priv.t  (** extension E2 trap *)
  | Not_kernel_mode of Priv.t  (** classic #GP: privileged insn in ring 3 *)
  | Pks_violation of { va : Addr.va; key : int; access : Pks.access }
  | Smap_violation of Addr.va
  | Priv_page_violation of Addr.va  (** user touched supervisor page *)
  | Write_violation of Addr.va
  | Nx_violation of Addr.va
  | Not_present of Addr.va

val pp_fault : Format.formatter -> fault -> unit
val show_fault : fault -> string

exception Fault of fault

type t = {
  id : int;
  mutable mode : mode;
  mutable cr3 : Addr.pfn;
  mutable pcid : int;
  mutable pkrs : Pks.rights;
  mutable pkru : Pks.rights;
  mutable gs_base : int;
  mutable kernel_gs_base : int;
  mutable if_flag : bool;
  mutable halted : bool;
  mutable saved_pkrs : Pks.rights list;  (** E4 interrupt-saved PKRS stack *)
  tlb : Tlb.t;
  clock : Clock.t;
  tc_key : int array;
      (** memoized translation fast path: packed (vpn, pcid) keys, 0 = empty *)
  tc_pfn : int array;
  tc_meta : int array;  (** packed leaf permissions (see [Cpu.tc_meta_pack]) *)
  mutable tc_enabled : bool;
}

val create : ?id:int -> ?tlb_capacity:int -> Clock.t -> t

val set_tcache : t -> bool -> unit
(** Enable/disable the memoized translation fast path (a per-CPU
    direct-mapped software cache in front of the TLB). Enabled by
    default; it is kept a strict subset of the TLB via the TLB's
    invalidate hook, charges the same structural [tlb_hit] cost and
    scores the same hit statistics, so disabling it changes raw speed
    only. Disabling clears the cache. *)

val tcache_enabled : t -> bool

val in_guest_kernel : t -> bool
(** Kernel mode with non-zero PKRS: a deprivileged guest kernel. *)

val load_cr3 : t -> root:Addr.pfn -> pcid:int -> unit
(** Load CR3 (+PCID) without flushing other PCIDs' TLB entries; charges
    the CR3-switch cost. *)

val exec_priv : t -> Priv.t -> (unit, fault) result
(** Execute a privileged instruction, applying extension E2's blocking
    and the per-instruction side effects (wrpkrs, swapgs, sysret/E3,
    iret/E4, cli/sti, hlt, invlpg...). *)

val exec_priv_exn : t -> Priv.t -> unit

val check_pte : t -> va:Addr.va -> access:Pks.access -> exec:bool -> Pte.t -> fault option
(** Check one leaf PTE against the CPU's mode and protection-key
    rights. *)

val access :
  t ->
  Page_table.t ->
  va:Addr.va ->
  access_kind:Pks.access ->
  ?exec:bool ->
  unit ->
  (Addr.pa, fault) result
(** Translate + permission-check an access, consulting this CPU's TLB
    (walk costs charged on miss). *)

val enter_user : t -> unit

val syscall_entry : t -> unit
(** The [syscall] instruction: ring 3 -> ring 0; charges entry+exit. *)

val hw_interrupt_entry : t -> pks_switch:bool -> unit
(** Hardware-interrupt arrival (extension E4): saves PKRS and zeroes it
    when the vectoring IDT entry carries the attribute. *)

val pp : Format.formatter -> t -> unit
