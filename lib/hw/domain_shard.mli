(** Shared spawn/join/merge scaffolding for the domain-sharded engines.

    [run ?domains ~lanes f] runs [f i] once for every lane
    [i ∈ 0..lanes-1], round-robin across [max 1 domains] OCaml
    domains ([domains <= 1] runs every lane inline on the calling
    domain — no spawns, the deterministic reference path).

    Probe integration: if the caller has a sink attached, each lane
    records into its own private ring (the caller's sink is parked
    while lanes run) and the streams are replayed into the caller's
    sink afterwards in lane order with each event's original
    domain tag preserved, bracketed by {!Probe.event.Domain_spawn} /
    {!Probe.event.Domain_join} happens-before edges — the exact
    input shape [Analysis.Racecheck] checks.

    [f] must only touch per-lane state (distinct lanes run
    concurrently on distinct domains); this is the contract the
    domain-race sanitizer exists to enforce. *)

val run : ?domains:int -> lanes:int -> (int -> unit) -> unit
