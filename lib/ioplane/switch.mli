(** Inter-container software switch: the host-side L2 fabric of the
    I/O plane. Container virtio-net backends and load-generator clients
    own ports connected pairwise; forwarding charges host CPU (lookup +
    copy) on the shared clock. *)

type port = {
  id : int;
  name : string;
  inbox : Bytes.t Queue.t;
  mutable link : int option;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable rx_packets : int;
  mutable rx_bytes : int;
}

type t

val create : Hw.Clock.t -> t
val port : t -> name:string -> port
val connect : t -> port -> port -> unit

val forward : t -> src:port -> Bytes.t -> unit
(** Forward one frame out of [src] to its linked peer's inbox (dropped
    and counted if unlinked). *)

val pending : port -> int
val drain : port -> Bytes.t list
val forwarded : t -> int
val dropped : t -> int
