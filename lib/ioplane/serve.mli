(** Multi-container traffic-serving harness (Figure 16 shape).

    An open-loop memtier-style load generator drives N containers of
    one backend through the software switch. Requests arrive on a fixed
    schedule regardless of fleet progress, so latency percentiles
    include queueing delay. Each run reports throughput, p50/p95/p99
    latency, and per-request doorbell / interrupt / exit counts. *)

type workload = Kv_memcached | Kv_redis | Web_static | Web_httpd

val pp_workload : Format.formatter -> workload -> unit
val show_workload : workload -> string
val equal_workload : workload -> workload -> bool
val workload_name : workload -> string
val workload_of_string : string -> workload option

(** One container's lane through the I/O plane: a backend wired to the
    event loop, its client switch port, a workload-specific request
    encoder, and completion bookkeeping.  The serve harness drives a
    fixed set of lanes; {!Fleet.Controller} attaches and detaches them
    dynamically as it scales. *)
module Lane : sig
  type t

  val attach :
    loop:Loop.t ->
    workload:workload ->
    ?fsync_every:int ->
    ?queue_size:int ->
    ?window:int ->
    rand:(int -> int) ->
    name:string ->
    Virt.Backend.t ->
    t
  (** Wire a backend into [loop]: configure its virtio queues, attach
      it, create + connect the client port, and boot the workload
      server.  [rand] draws request keys — the caller owns the RNG, so
      determinism policy (shared vs per-lane streams) stays with the
      harness. *)

  val send : t -> ts:float -> unit
  (** Inject one request, stamped with its scheduled arrival time [ts]
      for end-to-end latency accounting. *)

  val pump : ?submit:((unit -> unit) -> unit) -> t -> int
  (** Deliver inbound frames into the guest and run one request handler
      per frame — inline, or handed to [submit] (vCPU-scheduler work
      injection). Returns frames delivered. *)

  val reap : t -> float list
  (** Drain completed replies; returns their arrival timestamps
      (end-to-end latency = now - ts). *)

  val inflight : t -> int
  (** Requests sent but not yet reaped. *)

  val sent : t -> int
  val completed : t -> int
  val backend : t -> Virt.Backend.t
  val attachment : t -> Loop.attachment

  val detach : t -> unit
  (** Unplug from the event loop and unlink both switch ports (frames
      aimed at a dead lane count as switch drops). Idempotent; the
      backend itself is the caller's to destroy. *)
end

type config = {
  backend : string;  (** runc | hvm | pvm | cki *)
  nested : bool;
  containers : int;
  requests_per_container : int;
  window : int;  (** EVENT_IDX batch window; 0 = naive *)
  queue_size : int;
  rate_rps : float;  (** open-loop arrival rate per container *)
  workload : workload;
  use_sched : bool;  (** multiplex guest work over Vcpu_sched slices (cki only) *)
  fsync_every : int;  (** kv: log-append + fsync every Nth SET; 0 = off *)
  cpu_quota : (float * float) option;
      (** cgroup-style (period_ns, budget_ns) runtime cap applied to
          every vCPU; only meaningful with [use_sched] on cki. *)
}

val default_config : config

type result = {
  r_backend : string;
  r_label : string;
  r_workload : string;
  r_containers : int;
  r_requests : int;
  r_window : int;
  r_throughput_rps : float;
  r_mean_us : float;
  r_p50_us : float;
  r_p95_us : float;
  r_p99_us : float;
  r_doorbells : int;
  r_suppressed_kicks : int;
  r_interrupts : int;
  r_suppressed_interrupts : int;
  r_exits : int;
  r_doorbells_per_req : float;
  r_interrupts_per_req : float;
  r_exits_per_req : float;
  r_tx_stalls : int;
  r_switch_forwarded : int;
  r_blk_writes : int;
  r_service_passes : int;
  r_wall_ns : float;  (** simulated makespan the throughput is computed over *)
  r_domains : int;  (** 0 = shared-machine sequential path *)
}

val exit_events : string -> string list
(** Clock event names that count as privilege-boundary exits for a
    backend (empty for runc). *)

val run : ?domains:int -> config -> result * Cki.Container.t list
(** Build the fleet, serve every request, and collect counters. The
    returned containers (cki backend only) let callers run the
    whole-machine invariant checker over the final state.

    [domains = 0] (default) is the original shared-machine engine: all
    containers on one machine, one clock, latencies coupled through the
    shared event loop. [domains >= 1] shards whole containers across
    OCaml domains: each lane is a complete single-container fleet (own
    machine/clock/loop/switch) with a lane-derived rng seed; lanes are
    merged deterministically in lane order, per-lane probe streams are
    replayed into the caller's sink, and the reported throughput is
    computed over the simulated parallel makespan (max over domains of
    the sum of their lanes' elapsed times under the fixed round-robin
    lane assignment). Everything except that makespan accounting
    ([r_wall_ns], [r_throughput_rps], [r_domains]) is identical for
    every [domains >= 1]; [domains = 1] runs the lanes inline with no
    spawns. *)

val pp_result : Format.formatter -> result -> unit
