(* Inter-container software switch: the host-side L2 fabric of the I/O
   plane.  Each container's virtio-net backend owns a port; the load
   generator owns the peer ports.  Forwarding a frame costs host CPU
   (table lookup + copy), charged on the shared clock like every other
   host-side expense. *)

type port = {
  id : int;
  name : string;
  inbox : Bytes.t Queue.t;
  mutable link : int option;  (** connected peer port *)
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable rx_packets : int;
  mutable rx_bytes : int;
}

type t = {
  clock : Hw.Clock.t;
  ports : (int, port) Hashtbl.t;
  mutable next_id : int;
  mutable forwarded : int;
  mutable dropped : int;  (** frames forwarded out an unlinked port *)
}

let create clock = { clock; ports = Hashtbl.create 16; next_id = 0; forwarded = 0; dropped = 0 }

let port t ~name =
  let id = t.next_id in
  t.next_id <- id + 1;
  let p =
    {
      id;
      name;
      inbox = Queue.create ();
      link = None;
      tx_packets = 0;
      tx_bytes = 0;
      rx_packets = 0;
      rx_bytes = 0;
    }
  in
  Hashtbl.replace t.ports id p;
  p

let connect _t a b =
  a.link <- Some b.id;
  b.link <- Some a.id

(* Forward one frame out of [src] to its linked peer: lookup + copy on
   the host CPU, then the frame sits in the peer's inbox until that
   side's service pass (or the load generator) drains it. *)
let forward t ~(src : port) payload =
  src.tx_packets <- src.tx_packets + 1;
  src.tx_bytes <- src.tx_bytes + Bytes.length payload;
  Hw.Clock.charge t.clock "switch_forward"
    (Hw.Cost.switch_forward +. (float_of_int (Bytes.length payload) *. Hw.Cost.copy_byte));
  match src.link with
  | None -> t.dropped <- t.dropped + 1
  | Some peer_id ->
      let dst = Hashtbl.find t.ports peer_id in
      Queue.add payload dst.inbox;
      dst.rx_packets <- dst.rx_packets + 1;
      dst.rx_bytes <- dst.rx_bytes + Bytes.length payload;
      t.forwarded <- t.forwarded + 1

let pending (p : port) = Queue.length p.inbox

let drain (p : port) =
  let rec go acc =
    match Queue.take_opt p.inbox with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let forwarded t = t.forwarded
let dropped t = t.dropped
