(* Host block store behind the virtio-blk backends: an append-only
   write sink modelling the host's image files.  Per-sector media cost
   is charged by the queue service path (Kernel.host_service_blk); this
   module is the accounting endpoint. *)

type t = {
  mutable writes : int;
  mutable bytes : int;
  mutable sectors : int;
}

let create () = { writes = 0; bytes = 0; sectors = 0 }

let write t data =
  let len = Bytes.length data in
  t.writes <- t.writes + 1;
  t.bytes <- t.bytes + len;
  t.sectors <- t.sectors + max 1 ((len + 511) / 512)

let writes t = t.writes
let bytes t = t.bytes
let sectors t = t.sectors
