(** Host I/O event loop: multiplexes virtio device work across the
    container fleet.

    Doorbells either trigger an immediate service pass (window = 0,
    naive) or mark the attachment pending for the next batch window
    (EVENT_IDX coalescing, NAPI-style host polling). Each [tick] pumps
    inbound switch frames into the guests and services outstanding TX /
    blk work, forwarding frames through the {!Switch} and landing blk
    writes in the {!Blkstore}. *)

type attachment = {
  kernel : Kernel_model.Kernel.t;
  port : Switch.port;
  mutable rx_sid : int option;
  mutable pending_tx : bool;
  mutable pending_blk : bool;
}

type t

val create : Hw.Clock.t -> t
val switch : t -> Switch.t
val blkstore : t -> Blkstore.t
val attachments : t -> attachment list

val attach : t -> Kernel_model.Kernel.t -> name:string -> attachment
(** Give [kernel] a switch port and install the io-backend hooks
    (doorbell notification, synchronous service for backpressure, the
    block-store sink). *)

val detach : t -> attachment -> unit
val set_rx_socket : attachment -> int -> unit

val service : t -> attachment -> int
(** One forced service pass (TX through the switch + blk into the
    store); returns chains serviced. *)

val pump : attachment -> int
(** Deliver inbound frames queued at the port into the kernel's RX
    path; returns frames delivered. *)

val tick : t -> int
(** One event-loop iteration over the fleet (pump + service where
    outstanding); returns total progress (frames + chains). *)

val service_passes : t -> int
val ticks : t -> int
