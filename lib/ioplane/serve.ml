(* Multi-container traffic-serving harness (Figure 16 shape).

   An open-loop memtier-style load generator drives N containers of
   one backend through the switch: requests arrive on a fixed
   inter-arrival schedule whether or not the fleet keeps up, so
   latency includes queueing delay and the tail percentiles mean
   something.  Every request rides the full data path — switch port ->
   RX ring fill -> guest syscalls -> TX ring -> host service pass ->
   switch -> client port — and the per-request doorbell / interrupt /
   exit counts fall out of the same EVENT_IDX machinery the kernels
   use everywhere else.

   The per-container plumbing lives in [Lane]: one backend wired to
   the event loop plus its client port, request encoder and completion
   bookkeeping.  This harness drives a fixed set of lanes; the fleet
   controller (lib/fleet) attaches and detaches lanes dynamically. *)

type workload = Kv_memcached | Kv_redis | Web_static | Web_httpd
[@@deriving show { with_path = false }, eq]

let workload_name = function
  | Kv_memcached -> "memcached"
  | Kv_redis -> "redis"
  | Web_static -> "nginx-static"
  | Web_httpd -> "httpd"

let workload_of_string = function
  | "memcached" | "kv" -> Some Kv_memcached
  | "redis" -> Some Kv_redis
  | "nginx" | "static" | "nginx-static" | "web" -> Some Web_static
  | "httpd" -> Some Web_httpd
  | _ -> None

(* Exit-accounting events per backend: every guest/host privilege
   crossing the paper counts in Figure 16. *)
let exit_events = function
  | "runc" -> []
  | "hvm" -> [ "vmexit"; "vmexit_nested" ]
  | "pvm" -> [ "pvm_hypercall"; "pvm_hypercall_nst" ]
  | "cki" -> [ "cki_hypercall"; "cki_irq_exit" ]
  | other -> invalid_arg ("Serve: unknown backend " ^ other)

let count_events clock names =
  List.fold_left (fun acc e -> acc + Hw.Clock.occurrences clock e) 0 names

(* Drain the wire-side client peer of socket [sid], returning the
   number of frames taken. For virtio backends the switch port carries
   the measured reply path and the wire copy is discarded; for runc
   (no rings) the wire IS the reply path. *)
let drain_wire kernel sid =
  match Kernel_model.Kernel.socket_endpoint kernel sid with
  | None -> 0
  | Some ep -> (
      match ep.Kernel_model.Net.peer with
      | None -> 0
      | Some pid ->
          let peer = Kernel_model.Net.get (Kernel_model.Kernel.wire kernel) pid in
          let n = ref 0 in
          while Kernel_model.Net.pending peer > 0 do
            ignore (Kernel_model.Net.recv peer);
            incr n
          done;
          !n)

module Lane = struct
  type t = {
    backend : Virt.Backend.t;
    kernel : Kernel_model.Kernel.t;
    loop : Loop.t;
    att : Loop.attachment;
    client : Switch.port;
    encode : unit -> Bytes.t * (unit -> unit);
        (** draw the next request: wire payload + its handler *)
    inflight : (float * (unit -> unit)) Queue.t;  (** delivered-but-unhandled *)
    awaiting : float Queue.t;  (** handled, reply in transit: arrival ts *)
    mutable sent : int;
    mutable completed : int;
    mutable detached : bool;
  }

  let attach ~loop ~workload ?(fsync_every = 0) ?(queue_size = 64) ?(window = 1) ~rand ~name
      (b : Virt.Backend.t) =
    let kernel = b.Virt.Backend.kernel in
    Kernel_model.Kernel.configure_io ~queue_size ~window kernel;
    let att = Loop.attach loop kernel ~name in
    let switch = Loop.switch loop in
    let client = Switch.port switch ~name:(name ^ "-client") in
    Switch.connect switch att.Loop.port client;
    let sid, encode =
      match workload with
      | Kv_memcached | Kv_redis ->
          let flavor =
            match workload with Kv_redis -> Workloads.Kv.Redis | _ -> Workloads.Kv.Memcached
          in
          let srv = Workloads.Kv.create_server b flavor in
          let log_fd =
            if fsync_every > 0 then
              match
                Virt.Backend.syscall_exn b srv.Workloads.Kv.task
                  (Kernel_model.Syscall.Open { path = "/kv.log"; create = true })
              with
              | Kernel_model.Syscall.Rint fd -> Some fd
              | _ -> None
            else None
          in
          let sets = ref 0 in
          let encode () =
            let key = rand 100_000 in
            let req = if rand 2 = 0 then Workloads.Kv.Set key else Workloads.Kv.Get key in
            let payload = Workloads.Kv.encode_request req srv.Workloads.Kv.value_size in
            let handle () =
              Workloads.Kv.handle_request srv req;
              match (req, log_fd) with
              | Workloads.Kv.Set _, Some fd ->
                  incr sets;
                  if !sets mod fsync_every = 0 then begin
                    ignore
                      (Virt.Backend.syscall_exn b srv.Workloads.Kv.task
                         (Kernel_model.Syscall.Write { fd; data = Bytes.create 64 }));
                    ignore
                      (Virt.Backend.syscall_exn b srv.Workloads.Kv.task
                         (Kernel_model.Syscall.Fsync fd))
                  end
              | _ -> ()
            in
            (payload, handle)
          in
          (srv.Workloads.Kv.sock_id, encode)
      | Web_static | Web_httpd ->
          let kind =
            match workload with
            | Web_httpd -> Workloads.Webserver.Httpd
            | _ -> Workloads.Webserver.Nginx_static
          in
          let srv = Workloads.Webserver.create b kind in
          let encode () = (Bytes.create 512, fun () -> Workloads.Webserver.serve_one srv) in
          (srv.Workloads.Webserver.sock_id, encode)
    in
    Loop.set_rx_socket att sid;
    {
      backend = b;
      kernel;
      loop;
      att;
      client;
      encode;
      inflight = Queue.create ();
      awaiting = Queue.create ();
      sent = 0;
      completed = 0;
      detached = false;
    }

  let send t ~ts =
    if t.detached then invalid_arg "Serve.Lane.send: lane is detached";
    let payload, handle = t.encode () in
    Switch.forward (Loop.switch t.loop) ~src:t.client payload;
    Queue.add (ts, handle) t.inflight;
    t.sent <- t.sent + 1

  (* Deliver inbound frames, then run (or hand off) one handler per
     frame.  The arrival timestamp moves to the awaiting queue at
     hand-off time, not completion time: replies only materialize after
     the handler runs and handlers execute FIFO, so reap still matches
     them in order — and [inflight] keeps counting a request whose
     handler sits on a scheduler queue (scale-in must see it). *)
  let pump ?submit t =
    let n = Loop.pump t.att in
    for _ = 1 to n do
      match Queue.take_opt t.inflight with
      | None -> ()
      | Some (ts, handle) -> (
          Queue.add ts t.awaiting;
          match submit with Some s -> s handle | None -> handle ())
    done;
    n

  (* Reap completed replies, returning their arrival timestamps. *)
  let reap t =
    let port_replies = List.length (Switch.drain t.client) in
    let sid = Option.value t.att.Loop.rx_sid ~default:(-1) in
    let wire_replies = drain_wire t.kernel sid in
    let replies =
      if Kernel_model.Kernel.virtualized_io t.kernel then port_replies else wire_replies
    in
    let out = ref [] in
    for _ = 1 to replies do
      match Queue.take_opt t.awaiting with
      | None -> ()
      | Some ts ->
          t.completed <- t.completed + 1;
          out := ts :: !out
    done;
    List.rev !out

  let inflight t = Queue.length t.inflight + Queue.length t.awaiting
  let sent t = t.sent
  let completed t = t.completed
  let backend t = t.backend
  let attachment t = t.att

  (* Unplug from the event loop and unlink both switch ports, so frames
     sent at a dead lane are counted as drops instead of queueing
     forever.  The backend itself is the caller's to destroy. *)
  let detach t =
    if not t.detached then begin
      t.detached <- true;
      Loop.detach t.loop t.att;
      t.att.Loop.port.Switch.link <- None;
      t.client.Switch.link <- None
    end
end

type config = {
  backend : string;  (** runc | hvm | pvm | cki *)
  nested : bool;
  containers : int;
  requests_per_container : int;
  window : int;  (** EVENT_IDX batch window; 0 = naive *)
  queue_size : int;
  rate_rps : float;  (** open-loop arrival rate per container *)
  workload : workload;
  use_sched : bool;  (** multiplex guest work over Vcpu_sched slices (cki only) *)
  fsync_every : int;  (** kv: log-append + fsync every Nth SET; 0 = off *)
  cpu_quota : (float * float) option;
      (** cgroup-style (period_ns, budget_ns) cap per vCPU; needs [use_sched] *)
}

let default_config =
  {
    backend = "cki";
    nested = false;
    containers = 2;
    requests_per_container = 50;
    window = 1;
    queue_size = 64;
    rate_rps = 50_000.0;
    workload = Kv_memcached;
    use_sched = false;
    fsync_every = 0;
    cpu_quota = None;
  }

type result = {
  r_backend : string;
  r_label : string;
  r_workload : string;
  r_containers : int;
  r_requests : int;
  r_window : int;
  r_throughput_rps : float;
  r_mean_us : float;
  r_p50_us : float;
  r_p95_us : float;
  r_p99_us : float;
  r_doorbells : int;
  r_suppressed_kicks : int;
  r_interrupts : int;
  r_suppressed_interrupts : int;
  r_exits : int;
  r_doorbells_per_req : float;
  r_interrupts_per_req : float;
  r_exits_per_req : float;
  r_tx_stalls : int;
  r_switch_forwarded : int;
  r_blk_writes : int;
  r_service_passes : int;
  r_wall_ns : float;  (** simulated makespan the throughput is computed over *)
  r_domains : int;  (** 0 = shared-machine sequential path *)
}

(* One container's slot in the load schedule. *)
type chan = { lane : Lane.t; mutable next_arrival : float }

let default_seed = 0x2545F4914F6CDD1D

(* One fleet on one machine: the original sequential engine, now
   seedable so the sharded mode can give every lane its own
   deterministic request stream.  Returns the derived result plus the
   raw latencies and elapsed time the merge needs. *)
let run_core ?(seed = default_seed) cfg =
  if cfg.containers < 1 then invalid_arg "Serve: need at least one container";
  if cfg.requests_per_container < 1 then invalid_arg "Serve: need at least one request";
  let env = if cfg.nested then Virt.Env.Nested else Virt.Env.Bare_metal in
  let mem_mib = 256 + (128 * cfg.containers) in
  let machine = Hw.Machine.create ~cpus:4 ~mem_mib () in
  let clock = Hw.Machine.clock machine in
  let cki_containers = ref [] in
  let host =
    match cfg.backend with "cki" -> Some (Cki.Host.create machine) | _ -> None
  in
  let mk_backend () =
    match (cfg.backend, host) with
    | "runc", _ -> Virt.Runc.create ~env machine
    | "hvm", _ -> Virt.Hvm.create ~env machine
    | "pvm", _ -> Virt.Pvm.create ~env machine
    | "cki", Some h ->
        let c = Cki.Container.create ~env h in
        cki_containers := c :: !cki_containers;
        Cki.Container.backend c
    | other, _ -> invalid_arg ("Serve: unknown backend " ^ other)
  in
  let loop = Loop.create clock in
  let switch = Loop.switch loop in
  let interval = 1e9 /. cfg.rate_rps in
  let rng = ref seed in
  let rand n =
    (* xorshift; Serve stays deterministic across runs *)
    let x = !rng in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    rng := x land max_int;
    !rng mod n
  in
  let mk_chan i =
    let b = mk_backend () in
    let name = Printf.sprintf "%s%d" cfg.backend i in
    let lane =
      Lane.attach ~loop ~workload:cfg.workload ~fsync_every:cfg.fsync_every
        ~queue_size:cfg.queue_size ~window:cfg.window ~rand ~name b
    in
    {
      lane;
      next_arrival =
        Hw.Clock.now clock +. (float_of_int i *. (interval /. float_of_int cfg.containers));
    }
  in
  let chans = List.init cfg.containers mk_chan in
  (* Optional vCPU-scheduler multiplexing: guest work runs inside
     preempted timeslices, device service in the after-slice window. *)
  let sched =
    if cfg.use_sched then
      match (host, !cki_containers) with
      | Some h, cs when cs <> [] ->
          let s = Cki.Vcpu_sched.create h in
          let entries =
            List.map
              (fun c -> Cki.Vcpu_sched.add_vcpu ?quota:cfg.cpu_quota s c ~vcpu:0)
              (List.rev cs)
          in
          Some (s, entries)
      | _ -> None
    else None
  in
  let sched_submit_of =
    match sched with
    | None -> fun _ -> None
    | Some (_, entries) ->
        let arr = Array.of_list entries in
        fun i ->
          if i < Array.length arr then Some (Cki.Vcpu_sched.submit_work arr.(i)) else None
  in
  let total = cfg.containers * cfg.requests_per_container in
  let latencies = ref [] in
  let completed = ref 0 in
  let exits0 = count_events clock (exit_events cfg.backend) in
  let start_ns = Hw.Clock.now clock in
  (* Rebase the arrival schedule: fleet construction (guest boots)
     advanced the clock well past the chan-creation timestamps. *)
  List.iteri
    (fun i c ->
      c.next_arrival <-
        start_ns +. (float_of_int i *. (interval /. float_of_int cfg.containers)))
    chans;
  let rounds = ref 0 in
  let max_rounds = (100 * total) + 10_000 in
  while !completed < total do
    incr rounds;
    if !rounds > max_rounds then failwith "Serve: harness failed to converge";
    let progressed = ref false in
    (* Open-loop arrivals: inject every request whose scheduled arrival
       time has passed, timestamping for end-to-end latency. *)
    List.iter
      (fun c ->
        while
          Lane.sent c.lane < cfg.requests_per_container && c.next_arrival <= Hw.Clock.now clock
        do
          Lane.send c.lane ~ts:c.next_arrival;
          c.next_arrival <- c.next_arrival +. interval;
          progressed := true
        done)
      chans;
    (* Pump inbound frames into each guest, then run the guest-side
       handlers (directly, or as scheduled vCPU work). *)
    List.iteri
      (fun i c -> if Lane.pump ?submit:(sched_submit_of i) c.lane > 0 then progressed := true)
      chans;
    (match sched with
    | Some (s, _) ->
        Cki.Vcpu_sched.run s ~slices:cfg.containers ~after_slice:(fun () ->
            ignore (Loop.tick loop))
    | None -> ());
    (* Host event-loop iteration: service outstanding queues (batch
       window boundary — coalesced completions force one interrupt). *)
    if Loop.tick loop > 0 then progressed := true;
    (* Reap replies: virtio backends deliver them through the TX ring
       and switch port (the wire copy is discarded); runc has no rings,
       so the wire peer is the reply path. *)
    List.iter
      (fun c ->
        List.iter
          (fun ts ->
            latencies := (Hw.Clock.now clock -. ts) :: !latencies;
            incr completed;
            progressed := true)
          (Lane.reap c.lane))
      chans;
    (* Idle: advance the clock to the next scheduled arrival. *)
    if not !progressed then begin
      let next =
        List.fold_left
          (fun acc c ->
            if Lane.sent c.lane < cfg.requests_per_container then min acc c.next_arrival else acc)
          infinity chans
      in
      if next < infinity && next > Hw.Clock.now clock then
        Hw.Clock.advance clock (next -. Hw.Clock.now clock)
      else
        (* stragglers with no arrival pending: nudge time forward so a
           service pass can run on the next round *)
        Hw.Clock.advance clock 1_000.0
    end
  done;
  let elapsed_ns = Hw.Clock.now clock -. start_ns in
  let exits = count_events clock (exit_events cfg.backend) - exits0 in
  let sum f =
    List.fold_left
      (fun acc c ->
        match Kernel_model.Kernel.io_devices c.lane.Lane.kernel with
        | None -> acc
        | Some (tx, rx, blk) -> acc + f tx + f rx + f blk)
      0 chans
  in
  let doorbells = sum Kernel_model.Virtio.kicks in
  let suppressed_kicks = sum Kernel_model.Virtio.suppressed_kicks in
  let interrupts = sum Kernel_model.Virtio.interrupts in
  let suppressed_interrupts = sum Kernel_model.Virtio.suppressed_interrupts in
  let tx_stalls =
    List.fold_left (fun acc c -> acc + Kernel_model.Kernel.tx_stalls c.lane.Lane.kernel) 0 chans
  in
  let lat_us = List.map (fun ns -> ns /. 1e3) !latencies in
  let fl = float_of_int total in
  let label =
    match chans with c :: _ -> c.lane.Lane.backend.Virt.Backend.label | [] -> cfg.backend
  in
  let result =
    {
      r_backend = cfg.backend;
      r_label = label;
      r_workload = workload_name cfg.workload;
      r_containers = cfg.containers;
      r_requests = total;
      r_window = cfg.window;
      r_throughput_rps = fl /. (elapsed_ns /. 1e9);
      r_mean_us = Report.Stats.mean lat_us;
      r_p50_us = Report.Stats.percentile lat_us ~p:50.0;
      r_p95_us = Report.Stats.percentile lat_us ~p:95.0;
      r_p99_us = Report.Stats.percentile lat_us ~p:99.0;
      r_doorbells = doorbells;
      r_suppressed_kicks = suppressed_kicks;
      r_interrupts = interrupts;
      r_suppressed_interrupts = suppressed_interrupts;
      r_exits = exits;
      r_doorbells_per_req = float_of_int doorbells /. fl;
      r_interrupts_per_req = float_of_int interrupts /. fl;
      r_exits_per_req = float_of_int exits /. fl;
      r_tx_stalls = tx_stalls;
      r_switch_forwarded = Switch.forwarded switch;
      r_blk_writes = Blkstore.writes (Loop.blkstore loop);
      r_service_passes = Loop.service_passes loop;
      r_wall_ns = elapsed_ns;
      r_domains = 0;
    }
  in
  (result, List.rev !cki_containers, lat_us, elapsed_ns)

(* ------------------------------------------------------------------ *)
(* Domain-sharded execution                                            *)
(* ------------------------------------------------------------------ *)

(* Whole containers are the sharding unit: lane [i] is a complete
   single-container fleet (own machine, clock, event loop, switch) so
   lanes share no mutable state and a lane's result is independent of
   which domain ran it.  Lane [i] always gets the same derived rng
   seed, lanes are merged in fixed lane order, and the reported
   makespan is [max over domains of the sum of that domain's lane
   elapsed times] under the fixed round-robin lane->domain assignment
   — so the merged output is a pure function of [cfg] and [lanes],
   identical for any [domains >= 1] (and [domains = 1] IS the
   sequential lane-engine path, no spawns). *)
let lane_seed i =
  let s = (default_seed lxor (i * 0x9E3779B97F4A7C1)) land max_int in
  if s = 0 then 1 else s

let run_sharded ~domains cfg =
  let lanes = cfg.containers in
  let lane_cfg = { cfg with containers = 1 } in
  let outs = Array.make lanes None in
  (* Spawn/join/ring plumbing lives in [Hw.Domain_shard] (the repo's
     one blessed spawn site); each lane writes only its own [outs]
     slot. *)
  Hw.Domain_shard.run ~domains ~lanes (fun i ->
      outs.(i) <- Some (run_core ~seed:(lane_seed i) lane_cfg));
  let out i = match outs.(i) with Some o -> o | None -> failwith "Serve: lane did not run" in
  let sum_i f =
    let acc = ref 0 in
    for i = 0 to lanes - 1 do
      let r, _, _, _ = out i in
      acc := !acc + f r
    done;
    !acc
  in
  (* Simulated parallel makespan under the fixed lane->domain map. *)
  let makespan = ref 0.0 in
  for d = 0 to min domains lanes - 1 do
    let span = ref 0.0 in
    let i = ref d in
    while !i < lanes do
      let _, _, _, elapsed = out !i in
      span := !span +. elapsed;
      i := !i + domains
    done;
    if !span > !makespan then makespan := !span
  done;
  let lat_us = List.concat (List.init lanes (fun i -> let _, _, l, _ = out i in l)) in
  let containers = List.concat (List.init lanes (fun i -> let _, cs, _, _ = out i in cs)) in
  let r0, _, _, _ = out 0 in
  let total = sum_i (fun r -> r.r_requests) in
  let doorbells = sum_i (fun r -> r.r_doorbells) in
  let interrupts = sum_i (fun r -> r.r_interrupts) in
  let exits = sum_i (fun r -> r.r_exits) in
  let fl = float_of_int total in
  let result =
    {
      r0 with
      r_containers = lanes;
      r_requests = total;
      r_throughput_rps = fl /. (!makespan /. 1e9);
      r_mean_us = Report.Stats.mean lat_us;
      r_p50_us = Report.Stats.percentile lat_us ~p:50.0;
      r_p95_us = Report.Stats.percentile lat_us ~p:95.0;
      r_p99_us = Report.Stats.percentile lat_us ~p:99.0;
      r_doorbells = doorbells;
      r_suppressed_kicks = sum_i (fun r -> r.r_suppressed_kicks);
      r_interrupts = interrupts;
      r_suppressed_interrupts = sum_i (fun r -> r.r_suppressed_interrupts);
      r_exits = exits;
      r_doorbells_per_req = float_of_int doorbells /. fl;
      r_interrupts_per_req = float_of_int interrupts /. fl;
      r_exits_per_req = float_of_int exits /. fl;
      r_tx_stalls = sum_i (fun r -> r.r_tx_stalls);
      r_switch_forwarded = sum_i (fun r -> r.r_switch_forwarded);
      r_blk_writes = sum_i (fun r -> r.r_blk_writes);
      r_service_passes = sum_i (fun r -> r.r_service_passes);
      r_wall_ns = !makespan;
      r_domains = domains;
    }
  in
  (result, containers)

let run ?(domains = 0) cfg =
  if domains < 0 then invalid_arg "Serve: negative domain count";
  if domains = 0 then begin
    let result, containers, _, _ = run_core cfg in
    (result, containers)
  end
  else run_sharded ~domains cfg

let pp_result fmt r =
  Format.fprintf fmt
    "%-10s %-13s containers=%d window=%d  %8.1f req/s  lat(us) mean=%.1f p50=%.1f p95=%.1f \
     p99=%.1f@\n\
    \           per-req: doorbells=%.2f irqs=%.2f exits=%.2f  (suppressed kicks=%d irqs=%d, \
     stalls=%d, blk writes=%d)"
    r.r_label r.r_workload r.r_containers r.r_window r.r_throughput_rps r.r_mean_us r.r_p50_us
    r.r_p95_us r.r_p99_us r.r_doorbells_per_req r.r_interrupts_per_req r.r_exits_per_req
    r.r_suppressed_kicks r.r_suppressed_interrupts r.r_tx_stalls r.r_blk_writes
