(* The host I/O event loop: multiplexes device work across the
   container fleet.

   Each attached kernel gets a switch port and the io-backend hooks.
   Doorbells either trigger an immediate service pass (naive mode,
   window = 0 — the doorbell exit lands in the backend and it services
   right away) or mark the attachment pending for the next batch
   window (EVENT_IDX coalescing: the guest suppresses most kicks and
   the host polls the avail ring on its own schedule, NAPI-style).

   One [tick] is one event-loop iteration: pump inbound frames into
   the guests, then run a service pass over every attachment with
   outstanding work — TX frames are forwarded through the switch, blk
   writes land in the block store, and each serviced batch gets one
   forced completion interrupt (the batch-boundary latency bound). *)

type attachment = {
  kernel : Kernel_model.Kernel.t;
  port : Switch.port;
  mutable rx_sid : int option;  (** socket inbound frames are delivered to *)
  mutable pending_tx : bool;
  mutable pending_blk : bool;
}

type t = {
  switch : Switch.t;
  blkstore : Blkstore.t;
  mutable attachments : attachment list;
  mutable service_passes : int;
  mutable ticks : int;
}

let create clock =
  {
    switch = Switch.create clock;
    blkstore = Blkstore.create ();
    attachments = [];
    service_passes = 0;
    ticks = 0;
  }

let switch t = t.switch
let blkstore t = t.blkstore
let attachments t = t.attachments

(* One service pass over [att]: drain its TX queue through the switch
   and its blk queue into the store, forcing the completion interrupts
   (batch boundary). *)
let service t att =
  att.pending_tx <- false;
  att.pending_blk <- false;
  t.service_passes <- t.service_passes + 1;
  let tx =
    Kernel_model.Kernel.host_service_net_tx att.kernel
      ~handle:(fun payload -> Switch.forward t.switch ~src:att.port payload)
  in
  let blk = Kernel_model.Kernel.host_service_blk att.kernel ~handle:(Blkstore.write t.blkstore) in
  tx + blk

let attach t kernel ~name =
  let port = Switch.port t.switch ~name in
  let att = { kernel; port; rx_sid = None; pending_tx = false; pending_blk = false } in
  let immediate () = Kernel_model.Kernel.io_window kernel = 0 in
  let backend =
    {
      Kernel_model.Kernel.kicked =
        (fun target ->
          match target with
          | `Net_tx -> if immediate () then ignore (service t att) else att.pending_tx <- true
          | `Blk -> if immediate () then ignore (service t att) else att.pending_blk <- true
          | `Net_rx ->
              (* RX buffer-credit replenish: the delivery path services
                 the queue inline, nothing for the loop to do. *)
              ());
      service_now = (fun () -> ignore (service t att));
      blk_sink = Some (Blkstore.write t.blkstore);
    }
  in
  Kernel_model.Kernel.set_io_backend kernel (Some backend);
  t.attachments <- att :: t.attachments;
  att

let detach t att =
  Kernel_model.Kernel.set_io_backend att.kernel None;
  t.attachments <- List.filter (fun a -> a != att) t.attachments

let set_rx_socket att sid = att.rx_sid <- Some sid

(* Deliver inbound frames queued at the attachment's port into its
   kernel (RX ring fill + one interrupt per batch). *)
let pump att =
  match att.rx_sid with
  | None -> 0
  | Some sid -> (
      match Switch.drain att.port with
      | [] -> 0
      | frames -> (
          match Kernel_model.Kernel.deliver_packets att.kernel ~sid frames with
          | Ok () -> List.length frames
          | Error `No_socket -> 0))

let outstanding att =
  att.pending_tx || att.pending_blk
  ||
  match Kernel_model.Kernel.io_devices att.kernel with
  | None -> false
  | Some (tx, _rx, blk) ->
      Kernel_model.Virtio.in_flight tx > 0 || Kernel_model.Virtio.in_flight blk > 0

(* One event-loop iteration over the fleet. *)
let tick t =
  t.ticks <- t.ticks + 1;
  let progressed = ref 0 in
  List.iter
    (fun att ->
      progressed := !progressed + pump att;
      if outstanding att then progressed := !progressed + service t att)
    t.attachments;
  !progressed

let service_passes t = t.service_passes
let ticks t = t.ticks
