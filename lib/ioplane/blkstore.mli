(** Host block store behind the virtio-blk backends: an append-only
    write sink (the host's image files). Media cost is charged by the
    queue service path; this is the accounting endpoint. *)

type t

val create : unit -> t
val write : t -> Bytes.t -> unit
val writes : t -> int
val bytes : t -> int
val sectors : t -> int
