(* cki_demo: command-line driver for poking at the CKI reproduction.

     cki_demo micro  [--backend cki|runc|hvm|pvm] [--nested]
     cki_demo attack
     cki_demo policy
     cki_demo kv     [--clients N] [--redis] [--backend ...] [--nested]

   (The full table/figure regeneration lives in bench/main.exe.) *)

open Cmdliner

(* CKI containers booted during the run; `--check` sanitizes them. *)
let cki_containers : Cki.Container.t list ref = ref []

let track c =
  cki_containers := c :: !cki_containers;
  c

let mk_backend name nested =
  let env = if nested then Virt.Env.Nested else Virt.Env.Bare_metal in
  match name with
  | "runc" -> Virt.Runc.create ~env (Hw.Machine.create ~mem_mib:256 ())
  | "hvm" -> Virt.Hvm.create ~env (Hw.Machine.create ~mem_mib:256 ())
  | "pvm" -> Virt.Pvm.create ~env (Hw.Machine.create ~mem_mib:256 ())
  | "cki" -> Cki.Container.backend (track (Cki.Container.create_standalone ~env ~mem_mib:256 ()))
  | other -> failwith ("unknown backend: " ^ other)

let backend_arg =
  Arg.(value & opt string "cki" & info [ "b"; "backend" ] ~doc:"Backend: cki, runc, hvm, pvm.")

let nested_arg = Arg.(value & flag & info [ "nested" ] ~doc:"Deploy in a nested (IaaS VM) cloud.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "After the run, re-walk every booted CKI container's live page tables from raw \
           physical memory, cross-check against the monitor's claimed state, and lint the \
           recorded probe-event trace.  Exits non-zero on any finding.")

(* Run [f] under a probe recorder when [check] is set; afterwards scan
   every container booted during the run and lint the trace. *)
let with_check check f =
  if not check then f ()
  else begin
    let (), trace = Analysis.Trace.with_recorder f in
    let r =
      {
        Analysis.violations = Analysis.check_machine ~containers:!cki_containers;
        lints = Analysis.lint_trace trace;
      }
    in
    Printf.printf "\n%s" (Analysis.report r);
    if not (Analysis.is_clean r) then exit 1
  end

let micro backend nested check =
  with_check check @@ fun () ->
  let b = mk_backend backend nested in
  let task = Virt.Backend.spawn b in
  let getpid =
    Virt.Backend.mean_latency b ~n:1000 (fun () ->
        ignore (Virt.Backend.syscall_exn b task Kernel_model.Syscall.Getpid))
  in
  let pages = 1024 in
  let base =
    match
      Virt.Backend.syscall_exn b task
        (Kernel_model.Syscall.Mmap { pages; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> assert false
  in
  let _, pf =
    Hw.Clock.timed b.Virt.Backend.clock (fun () ->
        ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages ~write:true))
  in
  Printf.printf "%s\n  syscall  %8.0f ns\n  pgfault  %8.0f ns\n" b.Virt.Backend.label getpid
    (pf /. float_of_int pages);
  if b.Virt.Backend.supports_hypercall then begin
    let t0 = Hw.Clock.now b.Virt.Backend.clock in
    b.Virt.Backend.empty_hypercall ();
    Printf.printf "  hypercall%8.0f ns\n" (Hw.Clock.now b.Virt.Backend.clock -. t0)
  end

let attack check =
  with_check check @@ fun () ->
  let c = track (Cki.Container.create_standalone ~mem_mib:256 ()) in
  List.iter
    (fun (name, o) ->
      Printf.printf "%-28s %s\n" name
        (match o with Cki.Attacks.Blocked m -> "blocked: " ^ m | Cki.Attacks.Succeeded -> "ESCAPED"))
    (Cki.Attacks.all c)

let policy () =
  List.iter
    (fun inst ->
      Printf.printf "%-14s blocked=%-5b %s\n" (Hw.Priv.mnemonic inst)
        (Hw.Priv.blocked_in_guest inst)
        (Hw.Priv.show_virtualization (Hw.Priv.virtualized_as inst)))
    Hw.Priv.all_examples

let kv backend nested clients redis check =
  with_check check @@ fun () ->
  let b = mk_backend backend nested in
  let flavor = if redis then Workloads.Kv.Redis else Workloads.Kv.Memcached in
  let thr = Workloads.Kv.run_memtier b ~flavor ~clients ~requests:2000 in
  Printf.printf "%s %s with %d clients: %.1f k ops/s\n" b.Virt.Backend.label
    (Workloads.Kv.show_flavor flavor) clients (thr /. 1e3)

let micro_cmd =
  Cmd.v (Cmd.info "micro" ~doc:"Run the syscall/pgfault/hypercall microbenchmarks.")
    Term.(const micro $ backend_arg $ nested_arg $ check_arg)

let attack_cmd =
  Cmd.v (Cmd.info "attack" ~doc:"Run the container-escape attack suite against CKI.")
    Term.(const attack $ check_arg)

let policy_cmd =
  Cmd.v (Cmd.info "policy" ~doc:"Print the Table 3 privileged-instruction policy.")
    Term.(const policy $ const ())

let kv_cmd =
  let clients = Arg.(value & opt int 32 & info [ "c"; "clients" ] ~doc:"Concurrent clients.") in
  let redis = Arg.(value & flag & info [ "redis" ] ~doc:"Redis-like server (default memcached).") in
  Cmd.v (Cmd.info "kv" ~doc:"Run the key-value serving workload.")
    Term.(const kv $ backend_arg $ nested_arg $ clients $ redis $ check_arg)

let () =
  let doc = "CKI (EuroSys'25) reproduction demo driver" in
  exit (Cmd.eval (Cmd.group (Cmd.info "cki_demo" ~doc) [ micro_cmd; attack_cmd; policy_cmd; kv_cmd ]))
