(* cki_demo: command-line driver for poking at the CKI reproduction.

     cki_demo micro    [--backend cki|runc|hvm|pvm] [--nested]
     cki_demo attack
     cki_demo policy
     cki_demo kv       [--clients N] [--redis] [--backend ...] [--nested]
     cki_demo serve    [--containers N] [--requests M] [--window W] [--backend ...]
     cki_demo fleet    [--tenants N] [--rate R] [--requests M] [--slo US] [--quota PCT]
     cki_demo migrate  [--rounds N] [--chaos]
     cki_demo snapshot [--out FILE]
     cki_demo restore  [--in FILE]
     cki_demo clone    [--clones N] [--warm K]
     cki_demo model-check [--depth N] [--nest N] [--mutants]
     cki_demo lint-src [--root DIR] [--baseline FILE] [--write-baseline]

   Exit codes: 0 success; 1 usage/command-line errors, an unreadable
   or corrupt snapshot image, or a surviving mutant; 2 when --check
   finds invariant violations or lint findings, or when model-check
   finds a counterexample.

   (The full table/figure regeneration lives in bench/main.exe.) *)

open Cmdliner

(* CKI containers booted during the run; `--check` sanitizes them. *)
let cki_containers : Cki.Container.t list ref = ref []

let track c =
  cki_containers := c :: !cki_containers;
  c

let mk_backend name nested =
  let env = if nested then Virt.Env.Nested else Virt.Env.Bare_metal in
  match name with
  | "runc" -> Virt.Runc.create ~env (Hw.Machine.create ~mem_mib:256 ())
  | "hvm" -> Virt.Hvm.create ~env (Hw.Machine.create ~mem_mib:256 ())
  | "pvm" -> Virt.Pvm.create ~env (Hw.Machine.create ~mem_mib:256 ())
  | "cki" -> Cki.Container.backend (track (Cki.Container.create_standalone ~env ~mem_mib:256 ()))
  | other -> failwith ("unknown backend: " ^ other)

let backend_arg =
  Arg.(value & opt string "cki" & info [ "b"; "backend" ] ~doc:"Backend: cki, runc, hvm, pvm.")

let nested_arg = Arg.(value & flag & info [ "nested" ] ~doc:"Deploy in a nested (IaaS VM) cloud.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "After the run, re-walk every booted CKI container's live page tables from raw \
           physical memory, cross-check against the monitor's claimed state, and lint the \
           recorded probe-event trace.  Exits 2 on any finding.")

(* Run [f] under a probe recorder when [check] is set; afterwards scan
   every container booted during the run and lint the trace.  Findings
   exit with code 2 — distinct from usage errors (1). *)
let with_check check f =
  if not check then f ()
  else begin
    let (), trace = Analysis.Trace.with_recorder f in
    let r =
      {
        Analysis.violations = Analysis.check_machine ~containers:!cki_containers;
        lints = Analysis.lint_trace trace;
      }
    in
    Printf.printf "\n%s" (Analysis.report r);
    if not (Analysis.is_clean r) then exit 2
  end

let micro backend nested check =
  with_check check @@ fun () ->
  let b = mk_backend backend nested in
  let task = Virt.Backend.spawn b in
  let getpid =
    Virt.Backend.mean_latency b ~n:1000 (fun () ->
        ignore (Virt.Backend.syscall_exn b task Kernel_model.Syscall.Getpid))
  in
  let pages = 1024 in
  let base =
    match
      Virt.Backend.syscall_exn b task
        (Kernel_model.Syscall.Mmap { pages; prot = Kernel_model.Vma.prot_rw })
    with
    | Kernel_model.Syscall.Rint v -> v
    | _ -> assert false
  in
  let _, pf =
    Hw.Clock.timed b.Virt.Backend.clock (fun () ->
        ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages ~write:true))
  in
  Printf.printf "%s\n  syscall  %8.0f ns\n  pgfault  %8.0f ns\n" b.Virt.Backend.label getpid
    (pf /. float_of_int pages);
  if b.Virt.Backend.supports_hypercall then begin
    let t0 = Hw.Clock.now b.Virt.Backend.clock in
    b.Virt.Backend.empty_hypercall ();
    Printf.printf "  hypercall%8.0f ns\n" (Hw.Clock.now b.Virt.Backend.clock -. t0)
  end

let attack check =
  with_check check @@ fun () ->
  let c = track (Cki.Container.create_standalone ~mem_mib:256 ()) in
  List.iter
    (fun (name, o) ->
      Printf.printf "%-28s %s\n" name
        (match o with Cki.Attacks.Blocked m -> "blocked: " ^ m | Cki.Attacks.Succeeded -> "ESCAPED"))
    (Cki.Attacks.all c)

let policy () =
  List.iter
    (fun inst ->
      Printf.printf "%-14s blocked=%-5b %s\n" (Hw.Priv.mnemonic inst)
        (Hw.Priv.blocked_in_guest inst)
        (Hw.Priv.show_virtualization (Hw.Priv.virtualized_as inst)))
    Hw.Priv.all_examples

let kv backend nested clients redis check =
  with_check check @@ fun () ->
  let b = mk_backend backend nested in
  let flavor = if redis then Workloads.Kv.Redis else Workloads.Kv.Memcached in
  let thr = Workloads.Kv.run_memtier b ~flavor ~clients ~requests:2000 in
  Printf.printf "%s %s with %d clients: %.1f k ops/s\n" b.Virt.Backend.label
    (Workloads.Kv.show_flavor flavor) clients (thr /. 1e3)

let serve backend nested containers requests window workload rate sched fsync check =
  let workload =
    match Ioplane.Serve.workload_of_string workload with
    | Some w -> w
    | None -> failwith ("unknown workload: " ^ workload ^ " (memcached|redis|nginx|httpd)")
  in
  with_check check @@ fun () ->
  let cfg =
    {
      Ioplane.Serve.default_config with
      Ioplane.Serve.backend;
      nested;
      containers;
      requests_per_container = requests;
      window;
      workload;
      rate_rps = rate;
      use_sched = sched;
      fsync_every = fsync;
    }
  in
  let r, booted = Ioplane.Serve.run cfg in
  cki_containers := booted @ !cki_containers;
  Format.printf "%a@." Ioplane.Serve.pp_result r

(* The fleet controller: per-tenant serving slices with admission
   control, pick-two load balancing and SLO-driven autoscaling over
   warm clones.  Every scale-out clone is re-verified by the analysis
   scanner inside the controller; a verification refusal is a --check
   finding (exit 2) like any other. *)
let fleet tenants rate requests slo max_replicas quota_pct admission domains check =
  if tenants < 1 then failwith "need at least one tenant";
  with_check check @@ fun () ->
  let mk i =
    {
      Fleet.Controller.default_tenant with
      Fleet.Controller.name = Printf.sprintf "tenant%d" i;
      rate_rps = rate;
      requests;
      admission_rps = (if admission <= 0.0 then infinity else admission);
    }
  in
  let cfg =
    {
      Fleet.Controller.default_config with
      Fleet.Controller.tenants = List.init tenants mk;
      autoscaler =
        {
          Fleet.Autoscaler.default_config with
          Fleet.Autoscaler.slo_p99_us = slo;
          max_replicas;
        };
      cpu_quota =
        (if quota_pct <= 0.0 then None
         else Some (1_000_000.0, quota_pct /. 100.0 *. 1_000_000.0));
    }
  in
  let r = Fleet.Controller.run ~domains cfg in
  List.iter (fun tr -> Format.printf "%a@." Fleet.Controller.pp_tenant_result tr) r.Fleet.Controller.tenants;
  Format.printf "makespan %.1f ms (simulated)@." (r.Fleet.Controller.makespan_ns /. 1e6);
  let vf =
    List.fold_left
      (fun a tr -> a + tr.Fleet.Controller.tr_verify_failures)
      0 r.Fleet.Controller.tenants
  in
  if vf > 0 then begin
    Printf.eprintf "%d scale-out clones failed re-verification\n" vf;
    if check then exit 2
  end

(* ------------------------------------------------------------------ *)
(* Live migration                                                      *)
(* ------------------------------------------------------------------ *)

(* One pre-copy migration across a fresh 2-host fabric, then (with
   --chaos) the three failure scenarios plus the leak-injection
   self-test.  A migration must leave exactly one analysis-clean live
   copy and zero frames of the losing copy on the losing host —
   --check turns any departure from that into exit 2. *)
let migrate_cmd_impl rounds chaos check =
  let violations = ref 0 in
  with_check check @@ fun () ->
  let fab = Migrate.Fabric.create ~hosts:2 () in
  let a = Migrate.Chaos.boot_app fab ~hid:0 in
  ignore (Migrate.Fabric.expose fab ~name:"svc" ~home:0);
  let opts = { Migrate.Engine.default_opts with Migrate.Engine.rounds_max = rounds } in
  (match
     Migrate.Engine.migrate fab ~src:0 ~dst:1 ~name:"svc" a.Migrate.Chaos.container
       ~work:(Migrate.Chaos.work_of a) opts
   with
  | Error e ->
      Printf.eprintf "migration failed: %s\n" (Migrate.Engine.show_error e);
      exit 1
  | Ok st ->
      let open Migrate.Engine in
      ignore (track st.live);
      Printf.printf
        "migrated 'svc' host 0 -> host %d: downtime %.0f ns (total %.0f ns)\n\
        \  %d pre-copy rounds (%s), %d full + %d resent frames, %d buffered frames replayed\n"
        st.live_hid st.downtime_ns st.total_ns (List.length st.rounds)
        (if st.converged then "converged" else "round cap")
        st.frames_full st.frames_resent st.replayed;
      let leaked =
        Migrate.Fabric.owned_frames fab ~hid:st.loser_hid ~container:st.loser_container
      in
      Printf.printf "  source frames left behind: %d\n" leaked;
      if leaked > 0 then incr violations);
  if chaos then begin
    Printf.printf "\nchaos scenarios:\n";
    List.iter
      (fun (v : Migrate.Chaos.verdict) ->
        Printf.printf "  %-12s -> host %d live, %d findings, %d leaked, split brain %s: %s\n"
          (Migrate.Chaos.scenario_name v.Migrate.Chaos.scenario)
          v.Migrate.Chaos.live_hid v.Migrate.Chaos.analysis_findings v.Migrate.Chaos.leaked_frames
          (if v.Migrate.Chaos.split_brain then "YES" else "no")
          (if v.Migrate.Chaos.ok then "ok" else "VIOLATION");
        if not v.Migrate.Chaos.ok then incr violations)
      (Migrate.Chaos.all ());
    (* The leak checker must catch a planted frame on a surviving
       loser host (the dead source of Source_crash has nothing left
       to leak). *)
    let caught =
      List.for_all
        (fun (v : Migrate.Chaos.verdict) ->
          if Migrate.Chaos.(v.scenario = Source_crash) then v.Migrate.Chaos.ok
          else (not v.Migrate.Chaos.ok) && v.Migrate.Chaos.leaked_frames > 0)
        (Migrate.Chaos.all ~leak_inject:true ())
    in
    Printf.printf "  leak injection caught: %s\n" (if caught then "ok" else "VIOLATION");
    if not caught then incr violations
  end;
  if !violations > 0 then begin
    Printf.eprintf "%d migration invariant violation(s)\n" !violations;
    if check then exit 2
  end

(* ------------------------------------------------------------------ *)
(* Snapshot / restore / clone                                          *)
(* ------------------------------------------------------------------ *)

(* A little state worth snapshotting: a task with a dirty heap and a
   config file. *)
let init_workload (c : Cki.Container.t) =
  let b = Cki.Container.backend c in
  let task = Virt.Backend.spawn b in
  (match
     Virt.Backend.syscall_exn b task
       (Kernel_model.Syscall.Mmap { pages = 256; prot = Kernel_model.Vma.prot_rw })
   with
  | Kernel_model.Syscall.Rint base ->
      ignore (Kernel_model.Mm.touch_range task.Kernel_model.Task.mm ~start:base ~pages:256 ~write:true)
  | _ -> assert false);
  (match
     Virt.Backend.syscall_exn b task (Kernel_model.Syscall.Open { path = "/app.conf"; create = true })
   with
  | Kernel_model.Syscall.Rint fd ->
      ignore
        (Virt.Backend.syscall_exn b task
           (Kernel_model.Syscall.Write { fd; data = Bytes.of_string "threads=4\n" }))
  | _ -> assert false)

let snapshot out check =
  with_check check @@ fun () ->
  let c = track (Cki.Container.create_standalone ~mem_mib:256 ()) in
  init_workload c;
  match Snapshot.Capture.capture c with
  | Error e ->
      Printf.eprintf "capture failed: %s\n" (Snapshot.Capture.show_error e);
      exit 1
  | Ok image ->
      Snapshot.Image.write_file out image;
      Printf.printf "captured container to %s: %d tables, %d aux frames, %d tasks\n" out
        (List.length image.Snapshot.Image.tables)
        (Array.length image.Snapshot.Image.aux)
        (List.length image.Snapshot.Image.tasks)

let restore_cmd_impl input check =
  with_check check @@ fun () ->
  match Snapshot.Image.read_file input with
  | Error e ->
      Printf.eprintf "cannot load %s: %s\n" input (Snapshot.Image.show_decode_error e);
      exit 1
  | Ok image -> (
      let host = Cki.Host.create (Hw.Machine.create ~mem_mib:256 ()) in
      let clock = Hw.Machine.clock (Cki.Host.machine host) in
      match Hw.Clock.timed clock (fun () -> Snapshot.Restore.restore host image) with
      | Ok c, ns ->
          let c = track c in
          let kernel = c.Cki.Container.backend.Virt.Backend.kernel in
          Printf.printf "restored %s in %.0f simulated ns: %d tasks, %d materialized frames\n"
            input ns
            (List.length (Kernel_model.Kernel.tasks kernel))
            (Snapshot.Restore.materialized_frames c)
      | Error e, _ ->
          Printf.eprintf "restore failed: %s\n" (Snapshot.Restore.show_error e);
          exit 1)

let clone_cmd_impl clones warm check =
  with_check check @@ fun () ->
  let host = Cki.Host.create (Hw.Machine.create ~mem_mib:512 ()) in
  let clock = Hw.Machine.clock (Cki.Host.machine host) in
  let cfg = { Cki.Config.default with Cki.Config.segment_frames = 16384 } in
  let make () =
    let c = track (Cki.Container.create ~cfg host) in
    init_workload c;
    match Snapshot.Template.create c with
    | Ok t -> t
    | Error e -> failwith (Snapshot.Template.show_error e)
  in
  let pool = Snapshot.Pool.create ~target:warm ~make () in
  let total = ref 0.0 in
  for _ = 1 to clones do
    match Hw.Clock.timed clock (fun () -> Snapshot.Pool.spawn_fast pool) with
    | Ok c, ns ->
        ignore (track c);
        total := !total +. ns
    | Error e, _ ->
        Printf.eprintf "clone failed: %s\n" (Snapshot.Template.show_error e);
        exit 1
  done;
  Printf.printf "warm pool: %d templates prebooted, %d clones served, %.0f simulated ns/clone\n"
    (Snapshot.Pool.prebooted pool) (Snapshot.Pool.served pool)
    (!total /. float_of_int (max 1 clones))

(* ------------------------------------------------------------------ *)
(* Source auditing                                                     *)
(* ------------------------------------------------------------------ *)

let lint_src root baseline write_baseline =
  let root =
    match root with
    | Some r -> r
    | None -> (
        match Srclint.find_root () with
        | Some r -> r
        | None ->
            Printf.eprintf "lint-src: no repo root (dune-project + lib/) above %s\n" (Sys.getcwd ());
            exit 1)
  in
  let baseline_path =
    match baseline with Some b -> b | None -> Filename.concat root "srclint.baseline"
  in
  let scan = Srclint.scan ~root () in
  if write_baseline then begin
    Srclint.Baseline.save baseline_path scan.Srclint.findings;
    Printf.printf "%s: wrote %d accepted finding(s) (%s)\n" baseline_path
      (List.length scan.Srclint.findings)
      (Format.asprintf "%a" Srclint.pp_stats scan.Srclint.stats)
  end
  else begin
    let entries =
      match Srclint.Baseline.load baseline_path with
      | Ok e -> e
      | Error msg ->
          Printf.eprintf "lint-src: %s\n" msg;
          exit 1
    in
    let chk = Srclint.check ~baseline:entries scan.Srclint.findings in
    Report.Findings.print ~title:"srclint" (Srclint.to_findings chk.Srclint.fresh);
    Format.printf "%a; %d baselined, %d new@." Srclint.pp_stats scan.Srclint.stats
      (List.length chk.Srclint.baselined)
      (List.length chk.Srclint.fresh);
    List.iter
      (fun e ->
        Printf.printf "stale baseline entry (fires nothing, delete it): %s\n"
          (Srclint.Baseline.fingerprint_of_entry e))
      chk.Srclint.stale;
    if chk.Srclint.fresh <> [] then exit 2
  end

(* ------------------------------------------------------------------ *)
(* Domain-race sanitizer                                               *)
(* ------------------------------------------------------------------ *)

(* The static escape-analysis rule family race-check gates on. *)
let escape_family = [ "domain-escape"; "stale-annotation"; "undocumented-annotation" ]

let race_check root inject =
  let root =
    match root with
    | Some r -> r
    | None -> (
        match Srclint.find_root () with
        | Some r -> r
        | None ->
            Printf.eprintf "race-check: no repo root (dune-project + lib/) above %s\n"
              (Sys.getcwd ());
            exit 1)
  in
  (* Static half: the interprocedural sharing analysis, gated on the
     same baseline file as lint-src. *)
  let scan = Srclint.scan ~root () in
  let fam =
    List.filter
      (fun (f : Srclint.Rules.finding) -> List.mem f.Srclint.Rules.rule escape_family)
      scan.Srclint.findings
  in
  let entries =
    match Srclint.Baseline.load (Filename.concat root "srclint.baseline") with
    | Ok e -> e
    | Error msg ->
        Printf.eprintf "race-check: %s\n" msg;
        exit 1
  in
  let chk = Srclint.check ~baseline:entries fam in
  Report.Findings.print ~title:"race-check: static escape analysis"
    (Srclint.to_findings chk.Srclint.fresh);
  Printf.printf "static: %d file(s) scanned, %d escape-family finding(s) (%d baselined)\n"
    scan.Srclint.stats.Srclint.files (List.length chk.Srclint.fresh)
    (List.length chk.Srclint.baselined);
  (* Dynamic half: run the sharded engines with Phys_mem tracing on and
     race-check the merged replay. *)
  let run_traced label f =
    Hw.Probe.set_mem_trace true;
    let report =
      Fun.protect
        ~finally:(fun () -> Hw.Probe.set_mem_trace false)
        (fun () ->
          let _, trace = Analysis.Trace.with_recorder ~capacity:400_000 f in
          Analysis.Racecheck.of_trace trace)
    in
    Format.printf "dynamic (%s): %a@." label Analysis.Racecheck.pp_report report;
    Report.Findings.print
      ~title:(Printf.sprintf "race-check: dynamic (%s)" label)
      (Analysis.Racecheck.findings report);
    report
  in
  let cfg =
    {
      Ioplane.Serve.default_config with
      Ioplane.Serve.backend = "cki";
      containers = 4;
      requests_per_container = 25;
    }
  in
  let serve_report =
    run_traced "sharded serve, 2 domains" (fun () -> ignore (Ioplane.Serve.run ~domains:2 cfg))
  in
  let inject_report =
    if not inject then None
    else begin
      (* Self-test: two lanes on two domains mutate one shared machine;
         the checker MUST flag it, or it is broken. *)
      let mem = Hw.Phys_mem.create ~frames:64 in
      Some
        (run_traced "injected shared machine" (fun () ->
             Hw.Domain_shard.run ~domains:2 ~lanes:2 (fun i ->
                 Hw.Phys_mem.set_owner mem 3 (Hw.Phys_mem.Container i))))
    end
  in
  (match inject_report with
  | Some r when Analysis.Racecheck.is_clean r ->
      Printf.eprintf "race-check: injected cross-domain race was NOT caught — checker broken\n";
      exit 1
  | Some _ -> Printf.printf "inject: seeded cross-domain race caught, as it must be\n"
  | None -> ());
  let dynamic_bad =
    (not (Analysis.Racecheck.is_clean serve_report))
    || match inject_report with Some r -> not (Analysis.Racecheck.is_clean r) | None -> false
  in
  if chk.Srclint.fresh <> [] || dynamic_bad then exit 2;
  Printf.printf "race-check: clean (static + dynamic)\n"

(* ------------------------------------------------------------------ *)
(* Model checking                                                      *)
(* ------------------------------------------------------------------ *)

let model_check depth nest mutants =
  let config =
    {
      Modelcheck.Transition.default_config with
      Modelcheck.Transition.depth;
      nest_bound = nest;
    }
  in
  let r = Modelcheck.Explore.run_standalone ~config () in
  let s = r.Modelcheck.Explore.stats in
  Printf.printf
    "explored %d states / %d transitions to depth %d (peak frontier %d) in %.2f s\n\n"
    s.Modelcheck.Explore.states s.Modelcheck.Explore.transitions
    s.Modelcheck.Explore.depth_reached s.Modelcheck.Explore.peak_frontier
    s.Modelcheck.Explore.elapsed_s;
  print_string (Modelcheck.Cex.report r);
  let survivors =
    if not mutants then false
    else begin
      let verdicts = Modelcheck.Mutants.run_all () in
      Printf.printf "\n%s\n" (Modelcheck.Mutants.summary verdicts);
      List.iter
        (fun (v : Modelcheck.Mutants.verdict) ->
          match v.Modelcheck.Mutants.cex with
          | Some cex -> Printf.printf "\n[%s]\n%s" v.Modelcheck.Mutants.mutant.Modelcheck.Mutants.id (Modelcheck.Cex.render cex)
          | None -> ())
        verdicts;
      not (Modelcheck.Mutants.all_killed verdicts)
    end
  in
  if not (Modelcheck.Explore.ok r) then exit 2;
  if survivors then exit 1

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

let exits =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info 1
      ~doc:"on usage or command-line errors, or an unreadable or corrupt snapshot image.";
    Cmd.Exit.info 2 ~doc:"when $(b,--check) finds invariant violations or lint findings.";
  ]

let micro_cmd =
  Cmd.v (Cmd.info "micro" ~exits ~doc:"Run the syscall/pgfault/hypercall microbenchmarks.")
    Term.(const micro $ backend_arg $ nested_arg $ check_arg)

let attack_cmd =
  Cmd.v (Cmd.info "attack" ~exits ~doc:"Run the container-escape attack suite against CKI.")
    Term.(const attack $ check_arg)

let policy_cmd =
  Cmd.v (Cmd.info "policy" ~exits ~doc:"Print the Table 3 privileged-instruction policy.")
    Term.(const policy $ const ())

let kv_cmd =
  let clients = Arg.(value & opt int 32 & info [ "c"; "clients" ] ~doc:"Concurrent clients.") in
  let redis = Arg.(value & flag & info [ "redis" ] ~doc:"Redis-like server (default memcached).") in
  Cmd.v (Cmd.info "kv" ~exits ~doc:"Run the key-value serving workload.")
    Term.(const kv $ backend_arg $ nested_arg $ clients $ redis $ check_arg)

let serve_cmd =
  let containers =
    Arg.(value & opt int 4 & info [ "n"; "containers" ] ~doc:"Containers in the fleet.")
  in
  let requests =
    Arg.(value & opt int 100 & info [ "r"; "requests" ] ~doc:"Requests per container.")
  in
  let window =
    Arg.(
      value
      & opt int Ioplane.Serve.default_config.Ioplane.Serve.window
      & info [ "w"; "window" ] ~doc:"EVENT_IDX coalescing window (0 = naive notification).")
  in
  let workload =
    Arg.(
      value & opt string "memcached"
      & info [ "workload" ] ~doc:"Workload: memcached, redis, nginx, httpd.")
  in
  let rate =
    Arg.(
      value
      & opt float Ioplane.Serve.default_config.Ioplane.Serve.rate_rps
      & info [ "rate" ] ~doc:"Open-loop arrival rate per container (req/s).")
  in
  let sched =
    Arg.(
      value & flag
      & info [ "sched" ]
          ~doc:"Multiplex guest work over preempted vCPU timeslices (cki backend only).")
  in
  let fsync =
    Arg.(
      value & opt int 0
      & info [ "fsync-every" ] ~doc:"kv: append + fsync the log every Nth SET (0 = off).")
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Drive a multi-container fleet through the host I/O plane with an open-loop load \
          generator; reports throughput, p50/p95/p99 latency, and per-request doorbell / \
          interrupt / exit counts.")
    Term.(
      const serve $ backend_arg $ nested_arg $ containers $ requests $ window $ workload $ rate
      $ sched $ fsync $ check_arg)

let fleet_cmd =
  let tenants =
    Arg.(value & opt int 2 & info [ "n"; "tenants" ] ~doc:"Tenants, each an isolated slice.")
  in
  let rate =
    Arg.(value & opt float 30_000.0 & info [ "rate" ] ~doc:"Open-loop arrival rate per tenant (req/s).")
  in
  let requests = Arg.(value & opt int 5_000 & info [ "r"; "requests" ] ~doc:"Requests per tenant.") in
  let slo =
    Arg.(
      value
      & opt float Fleet.Autoscaler.default_config.Fleet.Autoscaler.slo_p99_us
      & info [ "slo" ] ~doc:"p99 latency SLO in microseconds; a windowed breach scales out.")
  in
  let max_replicas =
    Arg.(
      value
      & opt int Fleet.Autoscaler.default_config.Fleet.Autoscaler.max_replicas
      & info [ "max-replicas" ] ~doc:"Autoscaler ceiling per tenant.")
  in
  let quota =
    Arg.(
      value & opt float 10.0
      & info [ "quota" ] ~doc:"Per-replica CPU budget as a percentage (cpu.max); 0 = uncapped.")
  in
  let admission =
    Arg.(
      value & opt float 0.0
      & info [ "admission" ] ~doc:"Per-tenant admission token rate (req/s); 0 = off.")
  in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~doc:"Shard tenants across OCaml domains (0 = inline).")
  in
  Cmd.v
    (Cmd.info "fleet" ~exits
       ~doc:
         "Serve an open-loop multi-tenant fleet through the fleet controller: pick-two load \
          balancing, token-bucket admission control, and SLO-driven autoscaling that \
          scales out with analysis-verified warm clones and scales idle replicas back in.")
    Term.(
      const fleet $ tenants $ rate $ requests $ slo $ max_replicas $ quota $ admission $ domains
      $ check_arg)

let migrate_cmd =
  let rounds =
    Arg.(
      value
      & opt int Migrate.Engine.default_opts.Migrate.Engine.rounds_max
      & info [ "rounds" ] ~doc:"Pre-copy round cap (0 = pure stop-and-copy).")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Also run the failure scenarios — source crash mid-round, target crash before \
             cutover, fabric partition — plus the frame-leak-injection self-test; each must \
             leave exactly one analysis-clean live copy.")
  in
  Cmd.v
    (Cmd.info "migrate" ~exits
       ~doc:
         "Live-migrate a container between two fabric hosts with iterative pre-copy dirty \
          tracking: rounds of dirty-frame sends while the source serves, a bounded \
          stop-and-copy, analysis re-verification before cutover, and atomic endpoint \
          re-homing with buffered-traffic replay.")
    Term.(const migrate_cmd_impl $ rounds $ chaos $ check_arg)

let snapshot_cmd =
  let out =
    Arg.(value & opt string "container.ckisnap" & info [ "o"; "out" ] ~doc:"Output image file.")
  in
  Cmd.v
    (Cmd.info "snapshot" ~exits
       ~doc:"Boot a container, run an init workload, and capture it to an image file.")
    Term.(const snapshot $ out $ check_arg)

let restore_cmd =
  let input =
    Arg.(value & opt string "container.ckisnap" & info [ "i"; "in" ] ~doc:"Input image file.")
  in
  Cmd.v
    (Cmd.info "restore" ~exits
       ~doc:
         "Restore a container from an image file onto a fresh machine, relocating its hPA \
          segment; the result is re-verified with the invariant scanner.")
    Term.(const restore_cmd_impl $ input $ check_arg)

let clone_cmd =
  let clones = Arg.(value & opt int 4 & info [ "n"; "clones" ] ~doc:"Clones to spawn.") in
  let warm = Arg.(value & opt int 1 & info [ "w"; "warm" ] ~doc:"Templates to pre-boot.") in
  Cmd.v
    (Cmd.info "clone" ~exits
       ~doc:"Pre-boot frozen templates into a warm pool and serve CoW clones from it.")
    Term.(const clone_cmd_impl $ clones $ warm $ check_arg)

let lint_src_cmd =
  let root =
    Arg.(
      value
      & opt (some string) None
      & info [ "root" ] ~doc:"Repo root to audit (default: discovered from the current directory).")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~doc:"Baseline file of accepted findings (default: ROOT/srclint.baseline).")
  in
  let write =
    Arg.(
      value & flag
      & info [ "write-baseline" ]
          ~doc:"Regenerate the baseline accepting every current finding, then exit 0.")
  in
  Cmd.v
    (Cmd.info "lint-src" ~exits
       ~doc:
         "Statically audit the repo's own OCaml sources: raw memory write sinks outside the \
          TCB allowlist, inter-library layering violations, module-toplevel mutable state \
          (domain-sharding race hazards), and hygiene (missing .mli, Obj.magic / assert \
          false in TCB files, unpaired gate probes).  Exits 2 on any finding not covered by \
          the baseline.")
    Term.(const lint_src $ root $ baseline $ write)

let race_check_cmd =
  let root =
    Arg.(
      value
      & opt (some string) None
      & info [ "root" ] ~doc:"Repo root to audit (default: discovered from the current directory).")
  in
  let inject =
    Arg.(
      value & flag
      & info [ "inject" ]
          ~doc:
            "Also run the checker self-test: two lanes on two domains deliberately mutate one \
             shared machine; the seeded race must be caught (and makes the command exit 2).")
  in
  Cmd.v
    (Cmd.info "race-check" ~exits
       ~doc:
         "Run the two-layer domain-race sanitizer.  Static: the interprocedural sharing \
          analysis over every Domain.spawn closure (domain-escape, stale-annotation, \
          undocumented-annotation), gated on srclint.baseline.  Dynamic: a bounded sharded \
          serve run with Phys_mem access tracing on, its merged replay checked for \
          cross-domain accesses with no spawn/join happens-before edge.  Exits 2 on any \
          finding.")
    Term.(const race_check $ root $ inject)

let model_check_cmd =
  let depth =
    Arg.(
      value
      & opt int Modelcheck.Transition.default_config.Modelcheck.Transition.depth
      & info [ "d"; "depth" ] ~doc:"BFS depth bound, in transitions.")
  in
  let nest =
    Arg.(
      value
      & opt int Modelcheck.Transition.default_config.Modelcheck.Transition.nest_bound
      & info [ "nest" ] ~doc:"Max in-flight PKS-switch deliveries per vCPU.")
  in
  let mutants =
    Arg.(
      value & flag
      & info [ "mutants" ]
          ~doc:
            "Also run the mutation harness: each seeded policy mutant must be killed with a \
             counterexample; a survivor exits 1.")
  in
  Cmd.v
    (Cmd.info "model-check" ~exits
       ~doc:
         "Exhaustively explore the bounded privilege state space of a CKI container, checking \
          the E1-E4/gate safety properties on every reachable state and edge.  Exits 2 when a \
          counterexample is found (rendered as a shortest violating trace).")
    Term.(const model_check $ depth $ nest $ mutants)

let () =
  let doc = "CKI (EuroSys'25) reproduction demo driver" in
  exit
    (Cmd.eval ~term_err:1
       (Cmd.group (Cmd.info "cki_demo" ~doc ~exits)
          [
            micro_cmd;
            attack_cmd;
            policy_cmd;
            kv_cmd;
            serve_cmd;
            fleet_cmd;
            migrate_cmd;
            snapshot_cmd;
            restore_cmd;
            clone_cmd;
            model_check_cmd;
            lint_src_cmd;
            race_check_cmd;
          ]))
